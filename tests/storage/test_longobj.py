"""Unit tests for the long-object store (header/data page split)."""

import pytest

from repro.errors import InvalidAddressError, StorageError
from repro.nf2.serializer import DASDBS_FORMAT
from repro.storage import StorageEngine
from repro.storage.longobj import LongObjectStore


@pytest.fixture
def store():
    engine = StorageEngine(buffer_pages=100)
    return LongObjectStore(engine.new_segment("objects"), DASDBS_FORMAT)


def cold(store):
    """Flush + drop the buffer and reset metrics: next access is cold."""
    store.buffer.clear()
    store.segment.disk.metrics.reset()


SECTIONS = [b"R" * 150, b"P" * 1000, b"S" * 3400]


class TestStoreAndRead:
    def test_roundtrip_all_sections(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        assert store.read(addr) == SECTIONS

    def test_roundtrip_after_cold_restart(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        cold(store)
        assert store.read(addr) == SECTIONS

    def test_single_section_read(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        cold(store)
        assert store.read(addr, [1]) == [SECTIONS[1]]

    def test_section_subsets(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        assert store.read(addr, [0, 2]) == [SECTIONS[0], SECTIONS[2]]

    def test_empty_sections_allowed(self, store):
        addr = store.store([b"", b"abc", b""], n_subtuples=1)
        assert store.read(addr) == [b"", b"abc", b""]

    def test_no_sections_rejected(self, store):
        with pytest.raises(StorageError):
            store.store([], n_subtuples=0)

    def test_unknown_section_rejected(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        with pytest.raises(InvalidAddressError):
            store.read(addr, [7])

    def test_bad_address_rejected(self, store):
        store.store(SECTIONS, n_subtuples=13)
        from repro.storage.longobj import LongObjectAddress

        data_page = store.segment.page_ids[-1]  # a data page, not a header
        with pytest.raises(InvalidAddressError):
            store.read_directory(LongObjectAddress((data_page,)))

    def test_pages_exclusive_per_object(self, store):
        a = store.store(SECTIONS, n_subtuples=13)
        b = store.store(SECTIONS, n_subtuples=13)
        pages_a = set(a.header_page_ids) | set(store.read_directory(a).data_page_ids)
        pages_b = set(b.header_page_ids) | set(store.read_directory(b).data_page_ids)
        assert pages_a.isdisjoint(pages_b)


class TestIOAccounting:
    def test_full_read_two_calls(self, store):
        """DASDBS reads header pages and data pages in separate calls."""
        addr = store.store(SECTIONS, n_subtuples=13)
        cold(store)
        store.read(addr)
        snap = store.segment.disk.metrics.snapshot()
        assert snap.read_calls == 2
        # 1 header + ceil(4550/2012) = 3 data pages
        assert snap.pages_read == 4

    def test_partial_read_fewer_pages(self, store):
        """Equation 5: only the data pages of requested sections load."""
        addr = store.store(SECTIONS, n_subtuples=13)
        cold(store)
        store.read(addr, [0])  # root section: first data page only
        snap = store.segment.disk.metrics.snapshot()
        assert snap.read_calls == 2
        assert snap.pages_read == 2  # header + one data page

    def test_prefix_sections_one_data_page(self, store):
        """Root + Platform sections of a benchmark-like object share the
        first data page — 'the header page and a single data page'."""
        addr = store.store([b"R" * 150, b"P" * 900, b"S" * 3400], n_subtuples=13)
        cold(store)
        store.read(addr, [0, 1])
        assert store.segment.disk.metrics.snapshot().pages_read == 2

    def test_pages_of(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        header, data = store.pages_of(addr)
        assert header == 1
        assert data == 3

    def test_directory_forces_header_pages(self, store):
        """Thousands of sub-tuple entries push the directory past one page."""
        addr = store.store([b"x" * 100], n_subtuples=300)  # 32+12+2400 B directory
        header, _ = store.pages_of(addr)
        assert header == 2

    def test_pages_for_sections(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        assert store.pages_for_sections(addr, [0]) == 1
        assert store.pages_for_sections(addr, [0, 1]) == 1
        assert store.pages_for_sections(addr, [0, 1, 2]) == 3


class TestUpdates:
    def test_replace_same_sizes(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        new_sections = [b"r" * 150, b"p" * 1000, b"s" * 3400]
        store.replace(addr, new_sections)
        assert store.read(addr) == new_sections

    def test_replace_dirties_all_pages(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        store.buffer.flush()
        store.segment.disk.metrics.reset()
        store.replace(addr, SECTIONS)
        store.buffer.flush()
        assert store.segment.disk.metrics.snapshot().pages_written == 4

    def test_replace_size_change_rejected(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        with pytest.raises(StorageError):
            store.replace(addr, [b"too short", SECTIONS[1], SECTIONS[2]])

    def test_patch_section_deferred(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        store.buffer.flush()
        store.segment.disk.metrics.reset()
        store.patch_section(addr, 0, b"Q" * 150)
        assert store.segment.disk.metrics.snapshot().pages_written == 0
        store.buffer.flush()
        assert store.segment.disk.metrics.snapshot().pages_written == 1
        assert store.read(addr, [0]) == [b"Q" * 150]

    def test_patch_section_write_through_pool(self, store):
        """Section 5.3: the change-attribute page pool writes immediately."""
        addr = store.store(SECTIONS, n_subtuples=13)
        store.buffer.flush()
        store.segment.disk.metrics.reset()
        store.patch_section(addr, 0, b"W" * 150, write_through=True)
        snap = store.segment.disk.metrics.snapshot()
        assert snap.write_calls == 1
        assert snap.pages_written == 1

    def test_patch_wrong_size_rejected(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        with pytest.raises(StorageError):
            store.patch_section(addr, 0, b"tiny")

    def test_patch_section_spanning_pages(self, store):
        addr = store.store(SECTIONS, n_subtuples=13)
        new_sight = b"Z" * 3400  # spans two data pages
        store.patch_section(addr, 2, new_sight)
        assert store.read(addr, [2]) == [new_sight]
