"""Unit tests for the intent journal and crash recovery plumbing."""

import pytest

from repro.errors import RecoveryError, SimulatedCrash
from repro.fault.backend import FaultyBackend
from repro.fault.plan import FaultPlan
from repro.nf2.oid import Rid
from repro.storage import StorageEngine
from repro.storage.backends import MemoryBackend
from repro.storage.journal import (
    IntentJournal,
    JournalRecord,
    RecoveryReport,
    compose_forwarding,
)

PAGE = 256


def _record(batch_id, forwarding=(), op="recluster"):
    return JournalRecord(
        batch_id=batch_id,
        op=op,
        segment="seg",
        alloc_start=0,
        alloc_count=0,
        writes=(),
        frees=(),
        page_ids=(),
        forwarding=tuple(forwarding),
    )


class TestIntentJournal:
    def test_volatile_records_are_lost_by_crash(self):
        journal = IntentJournal("seg")
        journal.log(_record(0))
        dropped = journal.truncate_to_durable()
        assert [r.batch_id for r in dropped] == [0]
        assert len(journal) == 0
        assert journal.pending() == []

    def test_flush_is_the_commit_point(self):
        journal = IntentJournal("seg")
        journal.log(_record(0))
        journal.flush()
        journal.log(_record(1))
        assert [r.batch_id for r in journal.truncate_to_durable()] == [1]
        assert [r.batch_id for r in journal.pending()] == [0]

    def test_complete_and_checkpoint(self):
        journal = IntentJournal("seg")
        journal.log(_record(0))
        journal.log(_record(1))
        journal.flush()
        journal.complete(0)
        assert [r.batch_id for r in journal.pending()] == [1]
        assert [r.batch_id for r in journal.durable_records()] == [0, 1]
        journal.checkpoint()
        # Completed batch 0 is gone; incomplete batch 1 survives.
        assert [r.batch_id for r in journal.durable_records()] == [1]

    def test_complete_unknown_batch_raises(self):
        journal = IntentJournal("seg")
        journal.log(_record(0))  # volatile, not durable
        with pytest.raises(RecoveryError):
            journal.complete(0)

    def test_batch_ids_are_monotonic(self):
        journal = IntentJournal("seg")
        assert [journal.next_batch_id() for _ in range(3)] == [0, 1, 2]


class TestComposeForwarding:
    def test_empty(self):
        assert compose_forwarding([]) == {}

    def test_two_hops_fold_to_newest(self):
        a, b, c = Rid(1, 0), Rid(2, 0), Rid(3, 0)
        records = [
            _record(0, forwarding=(((1, 0), (2, 0)),)),
            _record(1, forwarding=(((2, 0), (3, 0)),)),
        ]
        composed = compose_forwarding(records)
        assert composed[a] == c
        assert composed[b] == c

    def test_independent_batches_union(self):
        records = [
            _record(0, forwarding=(((1, 0), (2, 0)),)),
            _record(1, forwarding=(((5, 1), (6, 1)),)),
        ]
        composed = compose_forwarding(records)
        assert composed == {Rid(1, 0): Rid(2, 0), Rid(5, 1): Rid(6, 1)}

    def test_report_forwarding_for_missing_segment_is_empty(self):
        report = RecoveryReport()
        assert report.forwarding_for("nope") == {}


class TestEngineRecovery:
    """End-to-end: journaled recluster under injected faults."""

    def _engine(self, plan=None):
        backend = MemoryBackend(PAGE)
        if plan is not None:
            backend = FaultyBackend(backend, plan)
        engine = StorageEngine(page_size=PAGE, buffer_pages=16, backend=backend)
        engine.enable_journaling()
        engine.enable_checksums()
        return engine

    def _fill(self, heap, n=40):
        rids = [heap.insert(bytes([i]) * 24) for i in range(n)]
        return {rid: bytes([i]) * 24 for i, rid in enumerate(rids)}

    def test_torn_destination_writes_are_healed(self):
        # Aggressive tear rate: most armed writes are corrupted on
        # first contact; apply_record's read-back verification rewrites
        # until clean.  (The rate stays below certainty so the bounded
        # retry converges — a deterministic property of this seed.)
        plan = FaultPlan(seed=3, torn=0.6)
        engine = self._engine(plan)
        heap = engine.new_heap("seg")
        contents = self._fill(heap)
        plan.arm()
        forwarding = heap.recluster(list(reversed(list(contents))))
        plan.disarm()
        assert plan.torn_writes > 0
        for rid, payload in contents.items():
            assert bytes(heap.read(forwarding.get(rid, rid))) == payload

    def test_crash_before_flush_rolls_back(self):
        # Crash on the very first armed backend call — a staging read,
        # before the intent is even logged: the disk is untouched and
        # recovery finds nothing to replay and no forwarding.
        plan = FaultPlan(seed=3, crash_at=0)
        engine = self._engine(plan)
        heap = engine.new_heap("seg")
        contents = self._fill(heap)
        # Cold buffer: staging must *read* the source pages through the
        # backend, so operation 0 lands before the journal flush.
        engine.restart_buffer()
        plan.arm()
        with pytest.raises(SimulatedCrash):
            heap.recluster(list(reversed(list(contents))))
        report = engine.recover()
        assert report.replayed == ()
        assert report.rolled_back == ()
        assert report.forwarding_for("seg") == {}
        for rid, payload in contents.items():
            assert bytes(heap.read(rid)) == payload

    def test_crash_after_flush_rolls_forward(self):
        # Enumerate crash points until one lands after the commit
        # point; recovery must replay the batch and expose the full
        # forwarding map.
        rolled_forward = 0
        crash_at = 0
        while rolled_forward == 0 and crash_at < 500:
            plan = FaultPlan(seed=3, crash_at=crash_at)
            engine = self._engine(plan)
            heap = engine.new_heap("seg")
            contents = self._fill(heap)
            order = list(reversed(list(contents)))
            plan.arm()
            try:
                heap.recluster(order)
                break  # ran clean: past the last crash point
            except SimulatedCrash:
                report = engine.recover()
                if report.replayed:
                    rolled_forward += 1
                    forwarding = report.forwarding_for("seg")
                    assert forwarding, "replayed batch must forward rids"
                    for rid, payload in contents.items():
                        new = forwarding.get(rid, rid)
                        assert bytes(heap.read(new)) == payload
            crash_at += 1
        assert rolled_forward == 1

    def test_checkpoint_clears_recovery_report(self):
        plan = FaultPlan(seed=3)
        engine = self._engine(plan)
        heap = engine.new_heap("seg")
        contents = self._fill(heap)
        heap.recluster(list(reversed(list(contents))))
        assert engine.recover().forwarding_for("seg")  # pre-checkpoint
        engine.checkpoint()
        report = engine.recover()
        assert report.forwarding_for("seg") == {}
        assert report.replayed == ()
