"""Unit tests for the simulated disk and its I/O accounting."""

import pytest

from repro.errors import InvalidAddressError, StorageError
from repro.storage.disk import DiskGeometry, SimulatedDisk
from repro.storage.metrics import MetricsCollector


@pytest.fixture
def disk():
    return SimulatedDisk(page_size=256)


class TestAllocation:
    def test_ids_are_sequential(self, disk):
        assert [disk.allocate() for _ in range(3)] == [0, 1, 2]

    def test_allocate_many_contiguous(self, disk):
        assert disk.allocate_many(4) == [0, 1, 2, 3]

    def test_allocate_many_negative_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.allocate_many(-1)

    def test_new_pages_zeroed(self, disk):
        pid = disk.allocate()
        assert disk.read_page(pid) == bytes(256)

    def test_free_releases(self, disk):
        pid = disk.allocate()
        disk.free(pid)
        assert not disk.is_allocated(pid)
        with pytest.raises(InvalidAddressError):
            disk.read_page(pid)

    def test_freed_ids_not_reused(self, disk):
        pid = disk.allocate()
        disk.free(pid)
        assert disk.allocate() == pid + 1

    def test_allocated_pages_counter(self, disk):
        disk.allocate_many(5)
        disk.free(0)
        assert disk.allocated_pages == 4

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StorageError):
            SimulatedDisk(page_size=16)


class TestTransfers:
    def test_write_then_read(self, disk):
        pid = disk.allocate()
        disk.write_page(pid, b"\x01" * 256)
        assert disk.read_page(pid) == b"\x01" * 256

    def test_wrong_size_write_rejected(self, disk):
        pid = disk.allocate()
        with pytest.raises(StorageError):
            disk.write_page(pid, b"short")

    def test_read_unallocated_rejected(self, disk):
        with pytest.raises(InvalidAddressError):
            disk.read_page(17)

    def test_multi_page_read_one_call(self, disk):
        pids = disk.allocate_many(5)
        disk.metrics.reset()
        disk.read_pages(pids)
        snap = disk.metrics.snapshot()
        assert snap.read_calls == 1
        assert snap.pages_read == 5

    def test_single_reads_many_calls(self, disk):
        pids = disk.allocate_many(5)
        disk.metrics.reset()
        for pid in pids:
            disk.read_page(pid)
        snap = disk.metrics.snapshot()
        assert snap.read_calls == 5
        assert snap.pages_read == 5

    def test_multi_page_write_one_call(self, disk):
        pids = disk.allocate_many(3)
        disk.metrics.reset()
        disk.write_pages((pid, bytes(256)) for pid in pids)
        snap = disk.metrics.snapshot()
        assert snap.write_calls == 1
        assert snap.pages_written == 3

    def test_empty_read_no_call(self, disk):
        disk.metrics.reset()
        assert disk.read_pages([]) == []
        assert disk.metrics.snapshot().read_calls == 0

    def test_empty_write_no_call(self, disk):
        disk.metrics.reset()
        disk.write_pages([])
        assert disk.metrics.snapshot().write_calls == 0

    def test_failed_write_atomic(self, disk):
        """A bad page in a batch must not half-apply the batch."""
        pid = disk.allocate()
        disk.write_page(pid, b"\x07" * 256)
        with pytest.raises(StorageError):
            disk.write_pages([(pid, bytes(256)), (pid + 99, bytes(256))])
        assert disk.read_page(pid) == b"\x07" * 256

    def test_shared_metrics_collector(self):
        metrics = MetricsCollector()
        disk = SimulatedDisk(page_size=128, metrics=metrics)
        pid = disk.allocate()
        disk.read_page(pid)
        assert metrics.read_calls == 1


class TestDiskGeometry:
    def test_service_time_formula(self):
        geo = DiskGeometry(positioning_ms=10.0, transfer_ms_per_page=1.0)
        assert geo.service_time_ms(2, 10) == 30.0

    def test_service_time_of_snapshot(self, disk):
        pids = disk.allocate_many(4)
        disk.metrics.reset()
        disk.read_pages(pids)
        geo = DiskGeometry(positioning_ms=10.0, transfer_ms_per_page=1.0)
        assert geo.service_time_of(disk.metrics.snapshot()) == 14.0

    def test_calls_dominate_for_scattered_io(self):
        """Many small calls cost more than one large call — the reason
        Table 5 matters."""
        geo = DiskGeometry()
        scattered = geo.service_time_ms(calls=10, pages=10)
        batched = geo.service_time_ms(calls=1, pages=10)
        assert scattered > batched
