"""Zero-copy frame cache over mmap, and four-backend bit-parity.

The mmap backend returns read-only :class:`memoryview` slices of its
mapping; the buffer manager keeps those views as frame data on clean
misses and only materialises a private ``bytearray`` copy when a frame
is first mutated (slotted-page copy-on-write, ``page_data``, or
seal-on-write).  These tests pin:

* clean buffer hits really are zero-copy (the frame holds a view);
* every mutation path (insert/update/delete/compact, ``page_data``,
  dirty-unmutated seal) materialises exactly once and writes back the
  right bytes;
* checksums compose with zero-copy frames;
* ``FaultyBackend`` composes with mmap/direct (zero-copy contract
  forwards, transient read faults stay transient);
* the paper's counters and the disk images are bit-identical across
  all four backends.
"""

import hashlib

import pytest

from repro.errors import TransientIOError
from repro.fault.backend import FaultyBackend
from repro.fault.plan import FaultPlan
from repro.storage import MmapBackend, StorageEngine
from repro.storage.backends import DirectBackend

PAGE = 2048  # multiple of 512 so the direct backend can run O_DIRECT


def mmap_engine(tmp_path, **kwargs):
    return StorageEngine(
        page_size=PAGE,
        buffer_pages=kwargs.pop("buffer_pages", 16),
        backend="mmap",
        backend_path=str(tmp_path / "zc.pages"),
        **kwargs,
    )


class TestZeroCopyFrames:
    def test_clean_miss_keeps_memoryview_frame(self, tmp_path):
        with mmap_engine(tmp_path) as engine:
            heap = engine.new_heap("t")
            rid = heap.insert(b"r" * 64)
            engine.restart_buffer()  # drop the bytearray frames
            assert heap.read(rid) == b"r" * 64
            frame = engine.buffer._frames[rid.page_id]
            assert isinstance(frame.data, memoryview)
            assert frame.data.readonly

    def test_repeated_hits_never_materialise(self, tmp_path):
        with mmap_engine(tmp_path) as engine:
            heap = engine.new_heap("t")
            rid = heap.insert(b"r" * 64)
            engine.restart_buffer()
            for _ in range(5):
                heap.read(rid)
            frame = engine.buffer._frames[rid.page_id]
            assert isinstance(frame.data, memoryview)

    def test_memory_backend_frames_stay_bytearray(self):
        with StorageEngine(page_size=PAGE, buffer_pages=8) as engine:
            heap = engine.new_heap("t")
            rid = heap.insert(b"r" * 64)
            engine.restart_buffer()
            heap.read(rid)
            frame = engine.buffer._frames[rid.page_id]
            assert type(frame.data) is bytearray

    def test_fix_returns_the_view_itself(self, tmp_path):
        with mmap_engine(tmp_path) as engine:
            heap = engine.new_heap("t")
            rid = heap.insert(b"r" * 64)
            engine.flush()
            engine.restart_buffer()
            data = engine.buffer.fix(rid.page_id)
            try:
                assert isinstance(data, memoryview)
            finally:
                engine.buffer.unfix(rid.page_id)


class TestCopyOnWrite:
    @pytest.mark.parametrize("op", ["insert", "update", "delete"])
    def test_record_mutation_materialises_frame(self, tmp_path, op):
        with mmap_engine(tmp_path) as engine:
            heap = engine.new_heap("t")
            rid = heap.insert(b"a" * 64)
            engine.restart_buffer()
            heap.read(rid)  # frame is now a clean memoryview
            assert isinstance(engine.buffer._frames[rid.page_id].data, memoryview)
            if op == "insert":
                heap.insert(b"b" * 64)
            elif op == "update":
                heap.update(rid, b"b" * 64)
            else:
                heap.delete(rid)
            frame = engine.buffer._frames[rid.page_id]
            assert type(frame.data) is bytearray  # adopted private copy

    def test_mutation_written_back_correctly(self, tmp_path):
        with mmap_engine(tmp_path) as engine:
            heap = engine.new_heap("t")
            rid = heap.insert(b"a" * 64)
            engine.restart_buffer()
            heap.update(rid, b"z" * 64)
            engine.restart_buffer()  # flush + cold cache
            assert heap.read(rid) == b"z" * 64

    def test_page_data_materialises(self, tmp_path):
        with mmap_engine(tmp_path) as engine:
            heap = engine.new_heap("t")
            rid = heap.insert(b"a" * 64)
            engine.restart_buffer()
            heap.read(rid)
            engine.buffer.fix(rid.page_id)
            try:
                data = engine.buffer.page_data(rid.page_id)
                assert type(data) is bytearray
                assert engine.buffer._frames[rid.page_id].data is data
            finally:
                engine.buffer.unfix(rid.page_id)

    def test_dirty_unmutated_frame_flushes_without_copy(self, tmp_path):
        """unfix(dirty=True) without touching the bytes: the write-back
        serialises the view's bytes; no materialisation is needed."""
        with mmap_engine(tmp_path) as engine:
            heap = engine.new_heap("t")
            rid = heap.insert(b"a" * 64)
            engine.restart_buffer()
            engine.buffer.fix(rid.page_id)
            engine.buffer.unfix(rid.page_id, dirty=True)
            engine.flush()
            assert isinstance(engine.buffer._frames[rid.page_id].data, memoryview)
            engine.restart_buffer()
            assert heap.read(rid) == b"a" * 64

    def test_dirty_unmutated_frame_sealed_under_checksums(self, tmp_path):
        """With checksums on, sealing stamps a CRC into the page, so the
        write-back path must materialise the read-only view first."""
        with mmap_engine(tmp_path) as engine:
            engine.enable_checksums()
            heap = engine.new_heap("t")
            rid = heap.insert(b"a" * 64)
            engine.restart_buffer()
            heap.read(rid)
            engine.buffer.fix(rid.page_id)
            engine.buffer.unfix(rid.page_id, dirty=True)
            assert isinstance(engine.buffer._frames[rid.page_id].data, memoryview)
            engine.flush()
            frame = engine.buffer._frames[rid.page_id]
            assert type(frame.data) is bytearray
            engine.restart_buffer()
            assert heap.read(rid) == b"a" * 64

    def test_checksums_compose_with_zero_copy(self, tmp_path):
        with mmap_engine(tmp_path) as engine:
            engine.enable_checksums()
            heap = engine.new_heap("t")
            rids = [heap.insert(bytes([i]) * 80) for i in range(20)]
            engine.restart_buffer()
            for i, rid in enumerate(rids):
                assert heap.read(rid) == bytes([i]) * 80
            heap.update(rids[3], b"u" * 80)
            engine.restart_buffer()
            assert heap.read(rids[3]) == b"u" * 80


class TestLongObjects:
    """Raw (non-slotted) long-object pages over zero-copy frames.

    ``replace``/``patch_section`` mutate page bytes directly (no
    slotted-page copy-on-write in front of them), so they must go
    through ``page_data`` — regression cover for the read-only-view
    TypeError the mmap backend exposed there.
    """

    def _store(self, engine):
        from repro.nf2.serializer import StorageFormat
        from repro.storage.longobj import LongObjectStore

        return LongObjectStore(engine.new_segment("lob"), StorageFormat())

    def test_store_replace_patch_round_trip(self, tmp_path):
        with mmap_engine(tmp_path) as engine:
            store = self._store(engine)
            sections = [b"a" * 3000, b"b" * 5000]
            address = store.store(sections, n_subtuples=2)
            engine.restart_buffer()
            assert store.read(address) == sections
            replaced = [b"c" * 3000, b"d" * 5000]
            store.replace(address, replaced)
            assert store.read(address) == replaced
            store.patch_section(address, 0, b"e" * 3000)
            engine.restart_buffer()
            assert store.read(address) == [b"e" * 3000, b"d" * 5000]

    def test_patch_write_through(self, tmp_path):
        with mmap_engine(tmp_path) as engine:
            store = self._store(engine)
            address = store.store([b"x" * 4000], n_subtuples=1)
            engine.restart_buffer()
            store.read(address)  # directory + data frames now views
            store.patch_section(address, 0, b"y" * 4000, write_through=True)
            engine.restart_buffer()
            assert store.read(address) == [b"y" * 4000]


class TestFaultComposition:
    @pytest.mark.parametrize("kind", ["mmap", "direct"])
    def test_zero_copy_contract_forwards(self, tmp_path, kind):
        if kind == "mmap":
            inner = MmapBackend(PAGE, path=str(tmp_path / "f.pages"))
        else:
            inner = DirectBackend(PAGE, path=str(tmp_path / "f.pages"))
        plan = FaultPlan(seed=1)
        wrapped = FaultyBackend(inner, plan)
        assert wrapped.zero_copy == inner.zero_copy
        wrapped.close()

    def test_transient_read_fault_over_mmap(self, tmp_path):
        inner = MmapBackend(PAGE, path=str(tmp_path / "f.pages"))
        plan = FaultPlan(seed=1, read=1.0)
        with StorageEngine(
            page_size=PAGE, buffer_pages=8, backend=FaultyBackend(inner, plan)
        ) as engine:
            heap = engine.new_heap("t")
            rid = heap.insert(b"a" * 64)
            engine.restart_buffer()
            plan.arm()
            with pytest.raises(TransientIOError):
                heap.read(rid)
            plan.disarm()
            # The mapping was never damaged — the retry succeeds.
            assert heap.read(rid) == b"a" * 64

    def test_faulted_direct_round_trip(self, tmp_path):
        inner = DirectBackend(PAGE, path=str(tmp_path / "f.pages"))
        plan = FaultPlan(seed=1)
        with StorageEngine(
            page_size=PAGE, buffer_pages=8, backend=FaultyBackend(inner, plan)
        ) as engine:
            heap = engine.new_heap("t")
            rids = [heap.insert(bytes([i + 1]) * 90) for i in range(30)]
            engine.restart_buffer()
            for i, rid in enumerate(rids):
                assert heap.read(rid) == bytes([i + 1]) * 90


def _exercise(engine):
    """A deterministic mixed workload; returns (metrics, disk digest)."""
    heap = engine.new_heap("t")
    rids = [heap.insert(bytes([i % 251 + 1]) * (40 + i % 30)) for i in range(120)]
    engine.restart_buffer()
    engine.reset_metrics()
    for i in range(0, 120, 3):
        heap.read(rids[i])
    for i in range(0, 120, 7):
        heap.update(rids[i], bytes([(i * 3) % 251 + 1]) * (40 + i % 30))
    deleted = set(range(0, 120, 11))
    for i in deleted:
        heap.delete(rids[i])
    heap.read_many([rids[i] for i in range(1, 120, 13) if i not in deleted])
    engine.flush()
    metrics = engine.metrics.snapshot()
    image = engine.snapshot().image
    digest = hashlib.sha256()
    for page in image:
        digest.update(b"\x00" if page is None else page)
    return metrics, digest.hexdigest()


class TestBackendParity:
    def test_counters_and_disk_images_bit_identical(self, tmp_path):
        outcomes = {}
        for name in ("memory", "file", "mmap", "direct"):
            path = None if name == "memory" else str(tmp_path / f"{name}.pages")
            with StorageEngine(
                page_size=PAGE, buffer_pages=12, backend=name, backend_path=path
            ) as engine:
                outcomes[name] = _exercise(engine)
        assert len(set(outcomes.values())) == 1, outcomes

    @pytest.mark.parametrize("name", ["memory", "file", "mmap", "direct"])
    def test_snapshot_restore_round_trip(self, tmp_path, name):
        path = None if name == "memory" else str(tmp_path / f"{name}.pages")
        with StorageEngine(
            page_size=PAGE, buffer_pages=12, backend=name, backend_path=path
        ) as engine:
            heap = engine.new_heap("t")
            rids = [heap.insert(bytes([i + 1]) * 70) for i in range(25)]
            image = engine.snapshot()
            heap.update(rids[0], b"X" * 70)
            heap.delete(rids[1])
            engine.restore(image)
            # The heap's page directory matches the snapshotted state
            # (update/delete never changed the page set), so the old
            # rids read straight through the rewound disk.
            assert heap.read(rids[0]) == bytes([1]) * 70
            assert heap.read(rids[1]) == bytes([2]) * 70
