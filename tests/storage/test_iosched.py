"""The I/O coalescing scheduler: fewer real calls, identical counters.

Covers the decorator in isolation (against a call-counting inner
backend) and composed into the engine and the serving layer:

* reads are sorted/merged/de-duplicated into fewer inner calls, with
  the ``submitted_runs``/``coalesced_runs`` pair quantifying the win;
* writes are deferred, merged and flushed in page order; staged pages
  serve read-after-write from the overlay;
* every paper-visible counter is bit-identical with the scheduler on
  or off, and its coalescing decisions are deterministic across
  serving worker-thread counts (1/2/8).
"""

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.workload import (
    WorkloadExecutor,
    WorkloadSpec,
    compile_trace,
)
from repro.errors import BenchmarkError
from repro.serving import ServingExecutor, make_client_traces, make_scheduler
from repro.storage import IOScheduler, MemoryBackend, StorageEngine

PAGE = 256


class CountingBackend(MemoryBackend):
    """Memory backend that records every read/write call's page ids."""

    def __init__(self, page_size=PAGE):
        super().__init__(page_size)
        self.read_calls = []
        self.write_calls = []

    def read_run(self, page_ids):
        self.read_calls.append(list(page_ids))
        return super().read_run(page_ids)

    def write_run(self, items):
        items = list(items)
        self.write_calls.append([pid for pid, _ in items])
        return super().write_run(items)


@pytest.fixture
def sched():
    inner = CountingBackend()
    scheduler = IOScheduler(inner, flush_pages=1000)
    scheduler.allocate_run(0, 16)
    inner.write_run(  # seed page contents behind the scheduler's back
        [(i, bytes([i + 1]) * PAGE) for i in range(16)]
    )
    inner.read_calls.clear()
    inner.write_calls.clear()
    return scheduler


class TestReadCoalescing:
    def test_interleaved_run_issues_one_sorted_call(self, sched):
        out = sched.read_run([3, 1, 2])
        assert [bytes(p) for p in out] == [
            bytes([4]) * PAGE,
            bytes([2]) * PAGE,
            bytes([3]) * PAGE,
        ]
        assert sched.inner.read_calls == [[1, 2, 3]]
        # Request order held two runs ([3], [1, 2]); one was issued.
        assert (sched.submitted_runs, sched.coalesced_runs) == (2, 1)

    def test_duplicates_deduplicated(self, sched):
        out = sched.read_run([2, 2, 3])
        assert [bytes(p) for p in out] == [
            bytes([3]) * PAGE,
            bytes([3]) * PAGE,
            bytes([4]) * PAGE,
        ]
        assert sched.inner.read_calls == [[2, 3]]

    def test_read_after_write_served_from_overlay(self, sched):
        sched.write_run([(5, b"N" * PAGE)])
        assert sched.inner.write_calls == []  # still staged
        out = sched.read_run([5, 6])
        assert bytes(out[0]) == b"N" * PAGE  # overlay, not stale disk
        assert bytes(out[1]) == bytes([7]) * PAGE
        assert sched.inner.read_calls == [[6]]  # only the true miss

    def test_fully_overlaid_read_issues_nothing(self, sched):
        sched.write_run([(4, b"O" * PAGE)])
        before = sched.coalesced_runs
        out = sched.read_run([4])
        assert bytes(out[0]) == b"O" * PAGE
        assert sched.inner.read_calls == []
        assert sched.coalesced_runs == before


class TestWriteDeferral:
    def test_adjacent_runs_merge_on_flush(self, sched):
        sched.write_run([(0, b"a" * PAGE)])
        sched.write_run([(2, b"c" * PAGE)])
        sched.write_run([(1, b"b" * PAGE)])
        assert sched.submitted_runs == 3
        sched.flush()
        assert sched.inner.write_calls == [[0, 1, 2]]  # one merged call
        assert sched.coalesced_runs == 1
        assert sched.read_run([0, 1, 2]) == [
            b"a" * PAGE,
            b"b" * PAGE,
            b"c" * PAGE,
        ]

    def test_rewrite_keeps_latest_image(self, sched):
        sched.write_run([(3, b"1" * PAGE)])
        sched.write_run([(3, b"2" * PAGE)])
        sched.flush()
        assert sched.inner.write_calls == [[3]]
        assert bytes(sched.inner.read_run([3])[0]) == b"2" * PAGE

    def test_auto_flush_at_threshold(self):
        inner = CountingBackend()
        scheduler = IOScheduler(inner, flush_pages=4)
        scheduler.allocate_run(0, 8)
        for i in range(4):
            scheduler.write_run([(i, bytes([i]) * PAGE)])
        assert inner.write_calls == [[0, 1, 2, 3]]
        assert scheduler.pending_pages == 0

    def test_free_drops_staged_page(self, sched):
        sched.write_run([(7, b"x" * PAGE)])
        sched.free(7)
        sched.flush()
        assert sched.inner.write_calls == []

    def test_reallocation_drops_stale_staging(self, sched):
        sched.write_run([(8, b"stale" + bytes(PAGE - 5))])
        sched.free(8)
        sched.allocate_run(8, 1)
        sched.flush()
        assert sched.inner.write_calls == []
        assert bytes(sched.read_run([8])[0]) == bytes(PAGE)

    def test_sync_and_snapshot_flush_first(self, sched):
        sched.write_run([(9, b"s" * PAGE)])
        image = sched.snapshot()
        assert image[9] == b"s" * PAGE
        assert sched.inner.write_calls == [[9]]
        sched.write_run([(10, b"t" * PAGE)])
        sched.sync()
        assert sched.inner.write_calls == [[9], [10]]

    def test_restore_discards_staging(self, sched):
        image = sched.snapshot()
        sched.write_run([(1, b"z" * PAGE)])
        sched.restore(image)
        assert sched.pending_pages == 0
        assert bytes(sched.read_run([1])[0]) == bytes([2]) * PAGE

    def test_drop_pending_loses_unissued_writes(self, sched):
        sched.write_run([(2, b"gone" + bytes(PAGE - 4))])
        sched.drop_pending()
        sched.flush()
        assert sched.inner.write_calls == []
        assert bytes(sched.read_run([2])[0]) == bytes([3]) * PAGE

    def test_zero_copy_forwards_inner(self, tmp_path):
        from repro.storage import MmapBackend

        assert IOScheduler(MemoryBackend(PAGE)).zero_copy is False
        mm = MmapBackend(PAGE, path=str(tmp_path / "z.pages"))
        assert IOScheduler(mm).zero_copy is True
        mm.close()


CFG = BenchmarkConfig(
    n_objects=40,
    buffer_pages=48,
    loops=5,
    q1a_sample=4,
    q1b_sample=1,
    q2a_sample=2,
    seed=3,
)

MODEL = "DASDBS-NSM"


def run_workload_cells(io_scheduler, backend="file"):
    """One workload replay; returns (metrics dict, scheduler counters)."""
    runner = BenchmarkRunner(
        CFG.with_changes(backend=backend, io_scheduler=io_scheduler)
    )
    model = runner.build_model(MODEL)
    try:
        spec = WorkloadSpec(name="iosched", n_ops=60, seed=11)
        trace = compile_trace(spec, CFG.n_objects)
        result = WorkloadExecutor(model, trace).run()
        model.engine.flush()  # issue any deferred writes before reading
        scheduler = model.engine.io_scheduler
        counters = (
            (scheduler.submitted_runs, scheduler.coalesced_runs)
            if scheduler is not None
            else None
        )
        return (result.raw, dict(result.op_counts)), counters
    finally:
        model.engine.close()


class TestEngineComposition:
    def test_counters_identical_scheduler_on_off(self):
        off, none = run_workload_cells(False)
        on, counters = run_workload_cells(True)
        assert none is None
        assert off == on
        submitted, coalesced = counters
        assert submitted >= coalesced > 0

    def test_config_rejects_scheduler_with_faults(self):
        with pytest.raises(BenchmarkError, match="io_scheduler"):
            CFG.with_changes(io_scheduler=True, faults="seed=1,read=0.01")

    def test_recover_drops_scheduler_staging(self):
        engine = StorageEngine(
            page_size=PAGE, buffer_pages=8, io_scheduler=True
        )
        heap = engine.new_heap("t")
        heap.insert(b"r" * 40)
        engine.flush()  # buffer write-back lands in the scheduler...
        assert engine.io_scheduler.pending_pages > 0
        engine.recover()  # ...and a crash loses it
        assert engine.io_scheduler.pending_pages == 0
        engine.close()


class TestServingDeterminism:
    def test_worker_threads_do_not_move_coalescing(self):
        """1/2/8 serving workers: identical coalescing decisions and
        identical paper counters (the ticket protocol serialises the
        storage operations in grant order)."""
        outcomes = {}
        for workers in (1, 2, 8):
            runner = BenchmarkRunner(
                CFG.with_changes(backend="file", io_scheduler=True)
            )
            model = runner.build_model(MODEL)
            try:
                spec = WorkloadSpec(name="det", n_ops=30, seed=7)
                traces = make_client_traces(spec, model.n_objects, 4)
                executor = ServingExecutor(
                    model,
                    traces,
                    scheduler=make_scheduler("fifo"),
                    workers=workers,
                )
                result = executor.run()
                model.engine.flush()
                scheduler = model.engine.io_scheduler
                outcomes[workers] = (
                    scheduler.submitted_runs,
                    scheduler.coalesced_runs,
                    result.result.raw,
                    dict(result.result.op_counts),
                )
            finally:
                model.engine.close()
        assert outcomes[1] == outcomes[2] == outcomes[8]
        submitted, coalesced = outcomes[1][0], outcomes[1][1]
        assert submitted >= coalesced > 0
