"""Storage-level snapshot/restore: disk images, backends, buffer reset."""

import pytest

from repro.errors import BufferError_, InvalidAddressError, StorageError
from repro.storage import StorageEngine
from repro.storage.backends import (
    FileBackend,
    MemoryBackend,
    TraceBackend,
    replay_trace,
)
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk

PAGE = 256


def _scribbled_disk(backend="memory", path=None):
    disk = SimulatedDisk(page_size=PAGE, backend=backend, backend_path=path)
    pids = disk.allocate_many(6)
    disk.write_pages((pid, bytes([pid + 1]) * PAGE) for pid in pids[:4])
    disk.free(pids[4])
    return disk, pids


class TestDiskSnapshot:
    def test_restore_rewinds_pages_and_allocation(self):
        disk, pids = _scribbled_disk()
        snap = disk.snapshot()
        disk.write_page(pids[0], b"\xee" * PAGE)
        disk.allocate_many(3)
        disk.restore(snap)
        assert disk.read_page(pids[0]) == b"\x01" * PAGE
        assert disk.allocated_pages == snap.n_pages
        assert disk.allocate() == 6  # next id rewound too

    def test_snapshot_is_immune_to_later_writes(self):
        disk, pids = _scribbled_disk()
        snap = disk.snapshot()
        image_before = snap.image
        disk.write_page(pids[1], b"\x99" * PAGE)
        assert snap.image == image_before
        disk.restore(snap)
        assert disk.read_page(pids[1]) == b"\x02" * PAGE

    def test_freed_pages_stay_unreadable_after_restore(self):
        disk, pids = _scribbled_disk()
        disk.restore(disk.snapshot())
        with pytest.raises(InvalidAddressError):
            disk.read_page(pids[4])

    def test_snapshot_charges_no_io(self):
        disk, _ = _scribbled_disk()
        disk.metrics.reset()
        snap = disk.snapshot()
        disk.restore(snap)
        counters = disk.metrics.snapshot()
        assert counters.io_calls == 0
        assert counters.io_pages == 0

    def test_page_size_mismatch_rejected(self):
        disk, _ = _scribbled_disk()
        snap = disk.snapshot()
        other = SimulatedDisk(page_size=2 * PAGE)
        with pytest.raises(StorageError):
            other.restore(snap)

    def test_image_restores_across_backends(self, tmp_path):
        """The canonical image built in memory clones onto a file disk."""
        memory_disk, pids = _scribbled_disk()
        snap = memory_disk.snapshot()
        file_disk = SimulatedDisk(
            page_size=PAGE, backend="file", backend_path=str(tmp_path / "clone.pages")
        )
        file_disk.restore(snap)
        live = [pid for pid in pids if pid != pids[4]]
        assert file_disk.read_pages(live) == memory_disk.read_pages(live)
        file_disk.close()

    def test_file_snapshot_restores_into_memory(self, tmp_path):
        file_disk, pids = _scribbled_disk(
            backend="file", path=str(tmp_path / "src.pages")
        )
        snap = file_disk.snapshot()
        memory_disk = SimulatedDisk(page_size=PAGE)
        memory_disk.restore(snap)
        assert memory_disk.read_page(pids[2]) == b"\x03" * PAGE
        file_disk.close()

    def test_disk_images_are_canonical_across_backends(self, tmp_path):
        """Freed pages leave None holes in memory but stale bytes in a
        file's extent; the disk-level snapshot masks both to None, so
        the same logical state yields the identical image everywhere."""
        memory_disk, pids = _scribbled_disk()
        file_disk, _ = _scribbled_disk(
            backend="file", path=str(tmp_path / "twin.pages")
        )
        memory_snap, file_snap = memory_disk.snapshot(), file_disk.snapshot()
        assert memory_snap.image == file_snap.image
        assert memory_snap.image[pids[4]] is None  # the freed page
        # ... and the image round-trips through a file backend.
        round_trip = SimulatedDisk(
            page_size=PAGE, backend="file", backend_path=str(tmp_path / "rt.pages")
        )
        round_trip.restore(memory_snap)
        assert round_trip.snapshot().image == memory_snap.image
        file_disk.close()
        round_trip.close()


class TestBackendSnapshots:
    def test_memory_restore_copies_the_image(self):
        backend = MemoryBackend(PAGE)
        backend.allocate_run(0, 2)
        backend.write_run([(0, b"a" * PAGE)])
        image = backend.snapshot()
        backend.write_run([(0, b"b" * PAGE)])
        backend.restore(image)
        assert backend.read_run([0]) == [b"a" * PAGE]
        # Mutating the restored backend must not leak into the image.
        backend.write_run([(1, b"c" * PAGE)])
        assert image[1] == bytes(PAGE)

    def test_trace_backend_records_snapshot_and_restore(self):
        backend = TraceBackend(MemoryBackend(PAGE))
        backend.allocate_run(0, 1)
        backend.write_run([(0, b"x" * PAGE)])
        image = backend.snapshot()
        backend.write_run([(0, b"y" * PAGE)])
        backend.restore(image)
        assert [e.op for e in backend.events] == [
            "allocate",
            "write",
            "snapshot",
            "write",
            "restore",
        ]
        assert backend.inner.read_run([0]) == [b"x" * PAGE]

    def test_replay_refuses_restore_events(self):
        backend = TraceBackend(MemoryBackend(PAGE))
        backend.allocate_run(0, 1)
        backend.restore(backend.snapshot())
        with pytest.raises(StorageError, match="restore"):
            replay_trace(backend.events, MemoryBackend(PAGE))

    def test_replay_skips_snapshot_events(self):
        backend = TraceBackend(MemoryBackend(PAGE))
        backend.allocate_run(0, 1)
        backend.write_run([(0, b"z" * PAGE)])
        backend.snapshot()
        replayed = MemoryBackend(PAGE)
        replay_trace(backend.events, replayed)
        assert replayed.read_run([0]) == [b"z" * PAGE]

    def test_file_snapshot_shrinks_and_grows_the_file(self, tmp_path):
        backend = FileBackend(PAGE, path=str(tmp_path / "d.pages"))
        backend.allocate_run(0, 2)
        backend.write_run([(0, b"1" * PAGE), (1, b"2" * PAGE)])
        image = backend.snapshot()
        backend.allocate_run(2, 3)
        backend.restore(image)
        assert backend.read_run([0, 1]) == [b"1" * PAGE, b"2" * PAGE]
        backend.close()


class TestBufferReset:
    def _buffer(self, capacity=4):
        disk = SimulatedDisk(page_size=PAGE)
        pids = disk.allocate_many(3)
        return BufferManager(disk, capacity=capacity), disk, pids

    def test_reset_drops_dirty_frames_unwritten(self):
        buffer, disk, pids = self._buffer()
        data = buffer.fix(pids[0])
        data[:4] = b"dirt"
        buffer.unfix(pids[0], dirty=True)
        disk.metrics.reset()
        buffer.reset()
        assert buffer.resident_pages == 0
        counters = disk.metrics.snapshot()
        assert counters.write_calls == 0  # clear() would have flushed
        assert disk.read_page(pids[0]) == bytes(PAGE)

    def test_reset_rejects_fixed_pages(self):
        buffer, _, pids = self._buffer()
        buffer.fix(pids[0])
        with pytest.raises(BufferError_):
            buffer.reset()

    def test_reset_rearms_the_policy(self):
        buffer, _, pids = self._buffer(capacity=2)
        for pid in pids[:2]:
            buffer.fix(pid)
            buffer.unfix(pid)
        buffer.reset()
        # A re-armed policy has forgotten every resident page: new
        # fixes must not try to evict ghosts of the dropped frames.
        for pid in pids:
            buffer.fix(pid)
            buffer.unfix(pid)
        assert buffer.resident_pages == 2


class TestEngineSnapshot:
    def test_engine_snapshot_includes_buffered_dirty_pages(self):
        engine = StorageEngine(page_size=PAGE, buffer_pages=8)
        heap = engine.new_heap("r")
        rid = heap.insert(b"hello")  # dirty in the buffer, not on disk
        snap = engine.snapshot()  # flushes first
        heap.update(rid, b"HELLO")
        engine.restore(snap)
        assert heap.read(rid) == b"hello"

    def test_engine_restore_resets_counters(self):
        engine = StorageEngine(page_size=PAGE, buffer_pages=8)
        heap = engine.new_heap("r")
        heap.insert(b"x")
        snap = engine.snapshot()
        heap.read(heap.insert(b"y"))
        engine.restore(snap)
        counters = engine.metrics.snapshot()
        assert counters.page_fixes == 0
        assert counters.io_calls == 0
