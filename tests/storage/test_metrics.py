"""Unit tests for metric counters, snapshots, and normalisation."""

import pytest

from repro.errors import MetricsError
from repro.storage.metrics import MetricsCollector, MetricsSnapshot


class TestCollector:
    def test_initial_state_zero(self):
        snap = MetricsCollector().snapshot()
        assert snap == MetricsSnapshot()

    def test_read_call_accumulates(self):
        m = MetricsCollector()
        m.record_read_call(3)
        m.record_read_call(2)
        snap = m.snapshot()
        assert snap.read_calls == 2
        assert snap.pages_read == 5

    def test_write_call_accumulates(self):
        m = MetricsCollector()
        m.record_write_call(4)
        snap = m.snapshot()
        assert snap.write_calls == 1
        assert snap.pages_written == 4

    def test_zero_page_call_rejected(self):
        m = MetricsCollector()
        with pytest.raises(MetricsError):
            m.record_read_call(0)
        with pytest.raises(MetricsError):
            m.record_write_call(-1)

    def test_fix_hit_miss_split(self):
        m = MetricsCollector()
        m.record_fix(hit=True)
        m.record_fix(hit=False)
        m.record_fix(hit=True)
        snap = m.snapshot()
        assert snap.page_fixes == 3
        assert snap.buffer_hits == 2
        assert snap.buffer_misses == 1

    def test_reset(self):
        m = MetricsCollector()
        m.record_read_call(5)
        m.reset()
        assert m.snapshot() == MetricsSnapshot()

    def test_snapshot_is_immutable_copy(self):
        m = MetricsCollector()
        snap = m.snapshot()
        m.record_read_call(1)
        assert snap.pages_read == 0


class TestSnapshotArithmetic:
    def test_subtraction_isolates_deltas(self):
        m = MetricsCollector()
        m.record_read_call(5)
        before = m.snapshot()
        m.record_read_call(3)
        m.record_write_call(2)
        delta = m.snapshot() - before
        assert delta.pages_read == 3
        assert delta.pages_written == 2

    def test_addition(self):
        a = MetricsSnapshot(read_calls=1, pages_read=2)
        b = MetricsSnapshot(read_calls=3, pages_read=4)
        total = a + b
        assert total.read_calls == 4
        assert total.pages_read == 6

    def test_io_totals(self):
        snap = MetricsSnapshot(read_calls=2, write_calls=1, pages_read=10, pages_written=5)
        assert snap.io_pages == 15
        assert snap.io_calls == 3

    def test_scaled_normalisation(self):
        snap = MetricsSnapshot(pages_read=300, page_fixes=600)
        scaled = snap.scaled(300)
        assert scaled.pages_read == 1.0
        assert scaled.page_fixes == 2.0
        assert scaled.io_pages == 1.0

    def test_scaled_rejects_bad_divisor(self):
        with pytest.raises(MetricsError):
            MetricsSnapshot().scaled(0)
