"""Unit tests for the buffer manager: fixing, eviction, write-back."""

import pytest

from repro.errors import BufferError_, BufferFullError, InvalidAddressError
from repro.storage.buffer import BufferManager, _contiguous_batches, make_policy
from repro.storage.disk import SimulatedDisk


def make(capacity=4, policy="lru", page_size=128):
    disk = SimulatedDisk(page_size=page_size)
    return disk, BufferManager(disk, capacity=capacity, policy=policy)


class TestFixUnfix:
    def test_miss_then_hit(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.fix(pid)
        buf.unfix(pid)
        disk.metrics.reset()
        buf.fix(pid)
        buf.unfix(pid)
        snap = disk.metrics.snapshot()
        assert snap.buffer_hits == 1
        assert snap.pages_read == 0

    def test_fix_counts(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.fix(pid)
        buf.fix(pid)
        assert buf.fixed_pages() == [pid]
        buf.unfix(pid)
        assert buf.fixed_pages() == [pid]
        buf.unfix(pid)
        assert buf.fixed_pages() == []

    def test_unfix_without_fix_rejected(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.fix(pid)
        buf.unfix(pid)
        with pytest.raises(BufferError_):
            buf.unfix(pid)

    def test_unfix_non_resident_rejected(self):
        disk, buf = make()
        with pytest.raises(InvalidAddressError):
            buf.unfix(42)

    def test_page_data_requires_fix(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.fix(pid)
        assert len(buf.page_data(pid)) == 128
        buf.unfix(pid)
        with pytest.raises(BufferError_):
            buf.page_data(pid)

    def test_dirty_written_on_flush(self):
        disk, buf = make()
        pid = disk.allocate()
        data = buf.fix(pid)
        data[0] = 0xAB
        buf.unfix(pid, dirty=True)
        buf.flush()
        assert disk.read_page(pid)[0] == 0xAB

    def test_capacity_must_be_positive(self):
        disk = SimulatedDisk(page_size=128)
        with pytest.raises(BufferError_):
            BufferManager(disk, capacity=0)


class TestFixMany:
    def test_one_call_for_all_misses(self):
        disk, buf = make(capacity=8)
        pids = disk.allocate_many(5)
        disk.metrics.reset()
        buf.fix_many(pids)
        snap = disk.metrics.snapshot()
        assert snap.read_calls == 1
        assert snap.pages_read == 5
        assert snap.page_fixes == 5
        for pid in pids:
            buf.unfix(pid)

    def test_mixed_hits_and_misses(self):
        disk, buf = make(capacity=8)
        pids = disk.allocate_many(4)
        buf.fix(pids[0])
        buf.unfix(pids[0])
        disk.metrics.reset()
        buf.fix_many(pids)
        snap = disk.metrics.snapshot()
        assert snap.pages_read == 3
        assert snap.buffer_hits == 1
        for pid in pids:
            buf.unfix(pid)

    def test_duplicates_fixed_per_occurrence(self):
        disk, buf = make(capacity=8)
        pid = disk.allocate()
        frames = buf.fix_many([pid, pid])
        assert list(frames) == [pid]
        buf.unfix(pid)
        buf.unfix(pid)  # two occurrences, two unfixes

    def test_requested_resident_page_survives_room_making(self):
        """Regression: making room for misses must not evict a requested
        resident (unfixed) page."""
        disk, buf = make(capacity=3)
        a, b, c, d = disk.allocate_many(4)
        buf.fix(a)
        buf.unfix(a)  # a resident, unfixed → eviction candidate
        buf.fix(b)
        buf.unfix(b)
        buf.fix(c)
        buf.unfix(c)
        frames = buf.fix_many([a, d])  # needs room; must not evict a
        assert set(frames) == {a, d}
        buf.unfix(a)
        buf.unfix(d)

    def test_over_capacity_request_rejected(self):
        disk, buf = make(capacity=2)
        pids = disk.allocate_many(3)
        with pytest.raises(BufferFullError):
            buf.fix_many(pids)


class TestEviction:
    def test_lru_evicts_least_recent(self):
        disk, buf = make(capacity=2, policy="lru")
        a, b, c = disk.allocate_many(3)
        buf.fix(a)
        buf.unfix(a)
        buf.fix(b)
        buf.unfix(b)
        buf.fix(a)
        buf.unfix(a)  # a more recent than b
        buf.fix(c)
        buf.unfix(c)  # evicts b
        assert buf.is_resident(a)
        assert not buf.is_resident(b)

    def test_fifo_ignores_recency(self):
        disk, buf = make(capacity=2, policy="fifo")
        a, b, c = disk.allocate_many(3)
        buf.fix(a)
        buf.unfix(a)
        buf.fix(b)
        buf.unfix(b)
        buf.fix(a)
        buf.unfix(a)  # recency irrelevant for FIFO
        buf.fix(c)
        buf.unfix(c)  # evicts a (first in)
        assert not buf.is_resident(a)
        assert buf.is_resident(b)

    def test_fixed_pages_never_evicted(self):
        disk, buf = make(capacity=2)
        a, b, c = disk.allocate_many(3)
        buf.fix(a)  # keep fixed
        buf.fix(b)
        buf.unfix(b)
        buf.fix(c)
        buf.unfix(c)  # must evict b, not a
        assert buf.is_resident(a)
        buf.unfix(a)

    def test_all_fixed_raises(self):
        disk, buf = make(capacity=2)
        a, b, c = disk.allocate_many(3)
        buf.fix(a)
        buf.fix(b)
        with pytest.raises(BufferFullError):
            buf.fix(c)

    def test_dirty_eviction_writes_back(self):
        disk, buf = make(capacity=1)
        a, b = disk.allocate_many(2)
        data = buf.fix(a)
        data[0] = 0x77
        buf.unfix(a, dirty=True)
        buf.fix(b)
        buf.unfix(b)  # evicts dirty a
        assert disk.read_page(a)[0] == 0x77
        assert disk.metrics.evictions == 1

    def test_clock_second_chance(self):
        disk, buf = make(capacity=2, policy="clock")
        a, b, c = disk.allocate_many(3)
        buf.fix(a)
        buf.unfix(a)
        buf.fix(b)
        buf.unfix(b)
        buf.fix(c)
        buf.unfix(c)
        assert buf.resident_pages == 2

    def test_random_policy_deterministic_capacity(self):
        disk, buf = make(capacity=2, policy="random")
        for pid in disk.allocate_many(6):
            buf.fix(pid)
            buf.unfix(pid)
        assert buf.resident_pages == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(BufferError_):
            make_policy("mru")

    def test_policy_kwargs_pass_through(self):
        """Ablations can vary the random-replacement seed."""
        seeded = make_policy("random", seed=7)
        default = make_policy("random")
        pages = list(range(20))
        for policy in (seeded, default):
            for pid in pages:
                policy.on_insert(pid)
        assert list(seeded.victims()) != list(default.victims())

    def test_policy_kwargs_deterministic_per_seed(self):
        a, b = make_policy("random", seed=7), make_policy("random", seed=7)
        for policy in (a, b):
            for pid in range(20):
                policy.on_insert(pid)
        assert list(a.victims()) == list(b.victims())

    def test_policy_rejects_unknown_kwargs(self):
        with pytest.raises(BufferError_):
            make_policy("lru", seed=7)


class TestFlush:
    def test_flush_batches_contiguous(self):
        disk, buf = make(capacity=10)
        pids = disk.allocate_many(6)
        for pid in pids:
            data = buf.fix(pid)
            data[0] = 1
            buf.unfix(pid, dirty=True)
        disk.metrics.reset()
        buf.flush()
        snap = disk.metrics.snapshot()
        assert snap.write_calls == 1  # one contiguous run
        assert snap.pages_written == 6

    def test_flush_splits_non_contiguous(self):
        disk, buf = make(capacity=10)
        pids = disk.allocate_many(5)
        for pid in (pids[0], pids[2], pids[4]):
            data = buf.fix(pid)
            data[0] = 1
            buf.unfix(pid, dirty=True)
        disk.metrics.reset()
        buf.flush()
        assert disk.metrics.snapshot().write_calls == 3

    def test_flush_idempotent(self):
        disk, buf = make()
        pid = disk.allocate()
        data = buf.fix(pid)
        data[0] = 1
        buf.unfix(pid, dirty=True)
        buf.flush()
        disk.metrics.reset()
        buf.flush()
        assert disk.metrics.snapshot().write_calls == 0

    def test_write_through_clears_dirty(self):
        disk, buf = make()
        pid = disk.allocate()
        data = buf.fix(pid)
        data[0] = 9
        buf.unfix(pid, dirty=True)
        buf.write_through(pid)
        assert disk.read_page(pid)[0] == 9
        disk.metrics.reset()
        buf.flush()
        assert disk.metrics.snapshot().write_calls == 0

    def test_batch_cap_respected(self):
        disk = SimulatedDisk(page_size=128)
        buf = BufferManager(disk, capacity=80, write_batch_max=8)
        pids = disk.allocate_many(20)
        for pid in pids:
            data = buf.fix(pid)
            data[0] = 1
            buf.unfix(pid, dirty=True)
        disk.metrics.reset()
        buf.flush()
        assert disk.metrics.snapshot().write_calls == 3  # 8 + 8 + 4

    def test_clear_flushes_and_drops(self):
        disk, buf = make()
        pid = disk.allocate()
        data = buf.fix(pid)
        data[0] = 5
        buf.unfix(pid, dirty=True)
        buf.clear()
        assert buf.resident_pages == 0
        assert disk.read_page(pid)[0] == 5

    def test_clear_with_fixed_pages_rejected(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.fix(pid)
        with pytest.raises(BufferError_):
            buf.clear()
        buf.unfix(pid)


class TestNewPage:
    def test_new_page_no_read_io(self):
        disk, buf = make()
        pid = disk.allocate()
        disk.metrics.reset()
        buf.new_page(pid)
        buf.unfix(pid, dirty=True)
        assert disk.metrics.snapshot().pages_read == 0

    def test_new_page_twice_rejected(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.new_page(pid)
        buf.unfix(pid)
        with pytest.raises(BufferError_):
            buf.new_page(pid)


def test_contiguous_batches_helper():
    assert list(_contiguous_batches([1, 2, 3, 7, 8, 10], 32)) == [[1, 2, 3], [7, 8], [10]]
    assert list(_contiguous_batches([], 32)) == []
    assert list(_contiguous_batches([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]


class TestCachedViews:
    """fix_view/view_of: one SlottedPage wrapper per residency."""

    def test_view_is_cached_per_residency(self):
        disk, buf = make()
        pid = disk.allocate()
        view = buf.fix_view(pid)
        assert buf.view_of(pid) is view
        buf.unfix(pid)
        assert buf.fix_view(pid) is view  # still resident, still cached
        buf.unfix(pid)

    def test_view_survives_mutation_through_itself(self):
        disk, buf = make()
        pid = disk.allocate()
        view = buf.fix_view(pid)
        slot = view.insert(b"abc")
        assert buf.view_of(pid) is view
        assert view.read(slot) == b"abc"
        buf.unfix(pid, dirty=True)

    def test_raw_page_data_invalidates_the_view(self):
        disk, buf = make()
        pid = disk.allocate()
        view = buf.fix_view(pid)
        view.insert(b"abc")
        raw = buf.page_data(pid)  # raw access may mutate behind the view
        raw[:] = bytes(len(raw))
        fresh = buf.view_of(pid)
        assert fresh is not view
        assert fresh.n_slots == 0
        buf.unfix(pid, dirty=True)

    def test_eviction_builds_a_fresh_view(self):
        disk, buf = make(capacity=1)
        a, b = disk.allocate(), disk.allocate()
        view = buf.fix_view(a)
        view.insert(b"abc")
        buf.unfix(a, dirty=True)
        buf.fix(b)
        buf.unfix(b)  # evicts a (capacity 1)
        again = buf.fix_view(a)
        assert again is not view
        assert again.read(0) == b"abc"
        buf.unfix(a)

    def test_view_of_requires_fix(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.fix(pid)
        buf.unfix(pid)
        with pytest.raises(BufferError_):
            buf.view_of(pid)
        with pytest.raises(InvalidAddressError):
            buf.view_of(4242)
