"""Session latch protocol and the fix-listener list.

The serving layer multiplexes sessions onto one buffer through the
``session_*`` entry points; these tests pin the protocol down frame by
frame: double-fix refcounting, unfix-by-non-holder rejection, eviction
blocked while *any* session holds a frame, view-cache coherence across
sessions, and disconnect cleanup.  The listener-list tests are the
regression suite for the old single-slot ``fix_listener`` limitation —
the statistics collector and the serving layer must be able to observe
the same replay.
"""

import pytest

from repro.errors import BufferError_, BufferFullError, InvalidAddressError, LatchError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk


def make(capacity=4, policy="lru", page_size=128):
    disk = SimulatedDisk(page_size=page_size)
    return disk, BufferManager(disk, capacity=capacity, policy=policy)


class TestLatchProtocol:
    def test_latching_off_by_default(self):
        disk, buf = make()
        assert not buf.latching

    def test_enable_latching_idempotent(self):
        disk, buf = make()
        buf.enable_latching()
        latch = buf._latch
        buf.enable_latching()
        assert buf._latch is latch

    def test_session_fix_enables_latching(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.session_fix(pid, session_id=0)
        assert buf.latching
        buf.session_unfix(pid, session_id=0)

    def test_double_fix_refcounting(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.session_fix(pid, 1)
        buf.session_fix(pid, 1)
        assert buf.session_fixes(1) == {pid: 2}
        buf.session_unfix(pid, 1)
        assert buf.session_fixes(1) == {pid: 1}
        assert buf.fixed_pages() == [pid]
        buf.session_unfix(pid, 1)
        assert buf.session_fixes(1) == {}
        assert buf.fixed_pages() == []

    def test_distinct_sessions_hold_independent_counts(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.session_fix(pid, 1)
        buf.session_fix(pid, 2)
        assert buf.session_fixes(1) == {pid: 1}
        assert buf.session_fixes(2) == {pid: 1}
        buf.session_unfix(pid, 1)
        # Session 2's fix still protects the frame.
        assert buf.fixed_pages() == [pid]
        buf.session_unfix(pid, 2)
        assert buf.fixed_pages() == []

    def test_unfix_by_non_holder_rejected(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.session_fix(pid, 1)
        with pytest.raises(LatchError):
            buf.session_unfix(pid, 2)
        # The violation must not have consumed session 1's fix.
        assert buf.session_fixes(1) == {pid: 1}
        buf.session_unfix(pid, 1)

    def test_unfix_while_contended(self):
        """A session releasing under contention releases only its own
        pin; the other holder's count and the frame's protection are
        untouched."""
        disk, buf = make()
        pid = disk.allocate()
        buf.session_fix(pid, 1)
        buf.session_fix(pid, 2)
        buf.session_fix(pid, 2)
        buf.session_unfix(pid, 2)
        assert buf.session_fixes(1) == {pid: 1}
        assert buf.session_fixes(2) == {pid: 1}
        with pytest.raises(LatchError):
            buf.session_unfix(pid, 3)
        buf.session_unfix(pid, 1)
        with pytest.raises(LatchError):
            buf.session_unfix(pid, 1)
        buf.session_unfix(pid, 2)

    def test_unfix_without_latching_rejected(self):
        disk, buf = make()
        pid = disk.allocate()
        buf.fix(pid)
        with pytest.raises(LatchError):
            buf.session_unfix(pid, 0)
        buf.unfix(pid)

    def test_unfix_non_resident_rejected(self):
        disk, buf = make()
        buf.enable_latching()
        with pytest.raises(InvalidAddressError):
            buf.session_unfix(99, 0)

    def test_session_fix_counts_like_fix(self):
        """Same metrics as the plain path: one fix, one miss, then hits."""
        disk, buf = make()
        pid = disk.allocate()
        buf.session_fix(pid, 0)
        buf.session_fix(pid, 0)
        snap = disk.metrics.snapshot()
        assert snap.page_fixes == 2
        assert snap.buffer_misses == 1 and snap.buffer_hits == 1
        buf.session_unfix(pid, 0)
        buf.session_unfix(pid, 0)

    def test_fixed_frame_not_evicted_across_sessions(self):
        """Filling the buffer cannot evict a frame another session holds
        fixed — and with every frame held, eviction fails loudly instead
        of stealing a pinned page."""
        disk, buf = make(capacity=2)
        pinned = disk.allocate()
        others = [disk.allocate() for _ in range(3)]
        buf.session_fix(pinned, 1)
        # A different session churning through pages must never displace it.
        for pid in others:
            buf.session_fix(pid, 2)
            buf.session_unfix(pid, 2)
            assert buf.is_resident(pinned)
        # Both frames pinned by different sessions: no victim remains.
        buf.session_fix(others[-1], 2)
        with pytest.raises(BufferFullError):
            buf.session_fix(others[0], 2)
        buf.session_unfix(others[-1], 2)
        buf.session_unfix(pinned, 1)

    def test_fix_view_generation_coherent_across_sessions(self):
        """A raw page_data mutation by one session invalidates the
        cached view the other session reads — the generation machinery
        is shared, like the frame."""
        disk, buf = make()
        pid = disk.allocate()
        view1 = buf.session_fix_view(pid, 1)
        view2 = buf.session_fix_view(pid, 2)
        assert view1 is view2  # one frame, one cached view
        buf.page_data(pid)  # raw access: generation bump
        view3 = buf.session_fix_view(pid, 2)
        assert view3 is not view1
        for _ in range(2):
            buf.session_unfix(pid, 2)
        buf.session_unfix(pid, 1)

    def test_release_session_drops_all_fixes(self):
        disk, buf = make()
        a, b = disk.allocate(), disk.allocate()
        buf.session_fix(a, 1)
        buf.session_fix(a, 1)
        buf.session_fix(b, 1)
        buf.session_fix(b, 2)
        assert buf.release_session(1) == 3
        assert buf.session_fixes(1) == {}
        # Session 2's pin survives the other session's disconnect.
        assert buf.session_fixes(2) == {b: 1}
        assert buf.fixed_pages() == [b]
        buf.session_unfix(b, 2)

    def test_release_session_without_latching_is_noop(self):
        disk, buf = make()
        assert buf.release_session(7) == 0

    def test_plain_paths_untouched_by_latching(self):
        """Arming the latch must not change what the unlatched fast
        paths do — the clients=1 byte-parity guarantee in miniature."""
        disk, buf = make()
        pid = disk.allocate()
        buf.fix(pid)
        buf.unfix(pid)
        baseline = disk.metrics.snapshot()
        disk2 = SimulatedDisk(page_size=128)
        buf2 = BufferManager(disk2, capacity=4)
        pid2 = disk2.allocate()
        buf2.enable_latching()
        buf2.fix(pid2)
        buf2.unfix(pid2)
        assert disk2.metrics.snapshot() == baseline


class TestFixListenerList:
    def test_both_listeners_fire_in_registration_order(self):
        """The single-slot regression: two observers of one replay."""
        disk, buf = make()
        pid = disk.allocate()
        fired = []
        buf.add_fix_listener(lambda p: fired.append(("stats", p)))
        buf.add_fix_listener(lambda p: fired.append(("serving", p)))
        buf.fix(pid)
        buf.unfix(pid)
        assert fired == [("stats", pid), ("serving", pid)]

    def test_listeners_fire_on_every_fix_path(self):
        disk, buf = make()
        a, b = disk.allocate(), disk.allocate()
        fresh = 17
        fired = []
        buf.add_fix_listener(fired.append)
        buf.fix(a)                      # miss
        buf.fix(a)                      # hit
        buf.fix_many([a, b])            # batched hit + miss
        buf.new_page(fresh)             # fresh page
        assert fired == [a, a, a, b, fresh]
        for _ in range(3):
            buf.unfix(a)
        buf.unfix(b)
        buf.unfix(fresh)

    def test_duplicate_registration_rejected(self):
        disk, buf = make()
        listener = lambda p: None
        buf.add_fix_listener(listener)
        with pytest.raises(BufferError_):
            buf.add_fix_listener(listener)

    def test_remove_unregistered_rejected(self):
        disk, buf = make()
        with pytest.raises(BufferError_):
            buf.remove_fix_listener(lambda p: None)

    def test_remove_restores_single_dispatch(self):
        disk, buf = make()
        pid = disk.allocate()
        fired = []
        keep, drop = fired.append, lambda p: fired.append(-p)
        buf.add_fix_listener(keep)
        buf.add_fix_listener(drop)
        buf.remove_fix_listener(drop)
        assert buf.fix_listeners == (keep,)
        buf.fix(pid)
        buf.unfix(pid)
        assert fired == [pid]

    def test_legacy_property_coexists_with_registered_listeners(self):
        """Assigning the legacy single slot must not disturb listeners
        registered via add_fix_listener — that was the bug."""
        disk, buf = make()
        pid = disk.allocate()
        fired = []
        registered = lambda p: fired.append("registered")
        buf.add_fix_listener(registered)
        legacy = lambda p: fired.append("legacy")
        buf.fix_listener = legacy
        assert buf.fix_listener is legacy
        assert buf.fix_listeners == (registered, legacy)
        # Save/set/restore, the historical usage pattern.
        saved = buf.fix_listener
        buf.fix_listener = None
        assert buf.fix_listeners == (registered,)
        buf.fix_listener = saved
        buf.fix(pid)
        buf.unfix(pid)
        assert fired == ["registered", "legacy"]

    def test_legacy_reassignment_replaces_only_its_slot(self):
        disk, buf = make()
        registered = lambda p: None
        first = lambda p: None
        second = lambda p: None
        buf.add_fix_listener(registered)
        buf.fix_listener = first
        buf.fix_listener = second
        assert buf.fix_listeners == (registered, second)

    def test_no_listeners_means_no_dispatch(self):
        disk, buf = make()
        assert buf._notify_fix is None
        listener = lambda p: None
        buf.add_fix_listener(listener)
        assert buf._notify_fix is listener  # zero-overhead single path
        buf.remove_fix_listener(listener)
        assert buf._notify_fix is None
