"""Unit tests for segments and the engine facade."""

import pytest

from repro.errors import InvalidAddressError
from repro.storage import StorageEngine


class TestSegment:
    def test_empty_segment(self, engine):
        seg = engine.new_segment("r")
        assert seg.n_pages == 0
        assert seg.last_page() is None
        assert len(seg) == 0

    def test_allocation_order_preserved(self, engine):
        seg = engine.new_segment("r")
        pids = []
        for _ in range(5):
            pid = seg.allocate_page()
            engine.buffer.unfix(pid)
            pids.append(pid)
        assert seg.page_ids == pids
        assert seg.last_page() == pids[-1]

    def test_membership(self, engine):
        seg = engine.new_segment("r")
        pid = seg.allocate_page()
        engine.buffer.unfix(pid)
        assert pid in seg
        assert (pid + 1000) not in seg

    def test_page_at(self, engine):
        seg = engine.new_segment("r")
        pid = seg.allocate_page()
        engine.buffer.unfix(pid)
        assert seg.page_at(0) == pid
        with pytest.raises(InvalidAddressError):
            seg.page_at(5)

    def test_segments_do_not_share_pages(self, engine):
        a = engine.new_segment("a")
        b = engine.new_segment("b")
        pid_a = a.allocate_page()
        engine.buffer.unfix(pid_a)
        pid_b = b.allocate_page()
        engine.buffer.unfix(pid_b)
        assert pid_a != pid_b
        assert pid_a not in b and pid_b not in a

    def test_allocation_charges_no_read_io(self, engine):
        seg = engine.new_segment("r")
        engine.reset_metrics()
        pid = seg.allocate_page()
        engine.buffer.unfix(pid)
        assert engine.metrics.snapshot().pages_read == 0


class TestStorageEngine:
    def test_shared_metrics(self, engine):
        assert engine.disk.metrics is engine.metrics
        assert engine.buffer.metrics is engine.metrics

    def test_flush_persists(self, engine):
        heap = engine.new_heap("r")
        rid = heap.insert(b"payload")
        engine.flush()
        engine.restart_buffer()
        assert heap.read(rid) == b"payload"

    def test_restart_buffer_empties_cache(self, engine):
        heap = engine.new_heap("r")
        heap.insert(b"x")
        engine.restart_buffer()
        assert engine.buffer.resident_pages == 0

    def test_reset_metrics(self, engine):
        heap = engine.new_heap("r")
        heap.insert(b"x")
        engine.reset_metrics()
        assert engine.metrics.snapshot().page_fixes == 0

    def test_custom_policy(self):
        engine = StorageEngine(buffer_pages=4, policy="clock")
        assert engine.buffer.policy.name == "clock"
