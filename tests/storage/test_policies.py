"""Buffer-pressure behavior of every replacement policy.

For each of the six policies (lru, fifo, clock, random, lru-k, 2q):

* an identical access trace yields a deterministic eviction sequence,
* a fixed page is never evicted, no matter the pressure,
* the hit/miss counters stay consistent with ``MetricsSnapshot``
  invariants (fixes = hits + misses, misses = pages read, evictions =
  misses - resident frames).

Plus policy-specific behavior (LRU-2 scan resistance, 2Q ghost
promotion) and the regression test for the RandomPolicy rewrite
(O(1) victim draws instead of sorting + shuffling the page set).
"""

import random

import pytest

from repro.storage.buffer import (
    POLICY_NAMES,
    BufferManager,
    LRUKPolicy,
    TwoQPolicy,
    make_policy,
)
from repro.storage.disk import SimulatedDisk

ALL_POLICIES = tuple(POLICY_NAMES)


def pressure_trace(n_pages=24, n_ops=400, seed=11):
    """A deterministic access pattern with heavy re-reference skew."""
    rng = random.Random(seed)
    return [rng.randrange(n_pages) for _ in range(n_ops)]


def run_trace(policy, capacity=6, n_pages=24, trace=None):
    """Replay a trace; returns (eviction events, metrics snapshot, buf).

    Eviction order is observed as the residency delta after every fix:
    each miss over a full buffer evicts exactly one page, so the event
    list captures the policy's victim sequence.
    """
    disk = SimulatedDisk(page_size=128)
    pids = disk.allocate_many(n_pages)
    buf = BufferManager(disk, capacity=capacity, policy=policy)
    if trace is None:
        trace = pressure_trace(n_pages)
    events = []
    resident = set()
    for step, index in enumerate(trace):
        pid = pids[index]
        buf.fix(pid)
        buf.unfix(pid)
        now = {p for p in pids if buf.is_resident(p)}
        evicted = resident - now
        for victim in sorted(evicted):
            events.append((step, victim))
        resident = now
    return events, disk.metrics.snapshot(), buf


class TestEveryPolicyUnderPressure:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_identical_trace_deterministic_evictions(self, policy):
        first, snap_a, _ = run_trace(policy)
        second, snap_b, _ = run_trace(policy)
        assert first == second
        assert snap_a == snap_b
        assert len(first) > 0  # the trace must actually cause pressure

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_fixed_page_never_evicted(self, policy):
        disk = SimulatedDisk(page_size=128)
        pids = disk.allocate_many(30)
        buf = BufferManager(disk, capacity=4, policy=policy)
        pinned = pids[0]
        buf.fix(pinned)  # held across all of the pressure below
        for pid in pids[1:]:
            buf.fix(pid)
            buf.unfix(pid)
            assert buf.is_resident(pinned)
        assert buf.fixed_pages() == [pinned]
        buf.unfix(pinned)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_hit_accounting_consistent(self, policy):
        trace = pressure_trace()
        _, snap, buf = run_trace(policy, trace=trace)
        assert snap.page_fixes == len(trace)
        assert snap.page_fixes == snap.buffer_hits + snap.buffer_misses
        # Single-page fixes: every miss is one one-page read call.
        assert snap.pages_read == snap.buffer_misses
        assert snap.read_calls == snap.buffer_misses
        # Frames only leave via eviction, so the balance must close.
        assert snap.evictions == snap.buffer_misses - buf.resident_pages

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_capacity_respected_under_pressure(self, policy):
        _, _, buf = run_trace(policy, capacity=5)
        assert buf.resident_pages <= 5

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_no_victim_when_everything_fixed(self, policy):
        from repro.errors import BufferFullError

        disk = SimulatedDisk(page_size=128)
        a, b, c = disk.allocate_many(3)
        buf = BufferManager(disk, capacity=2, policy=policy)
        buf.fix(a)
        buf.fix(b)
        with pytest.raises(BufferFullError):
            buf.fix(c)
        buf.unfix(a)
        buf.unfix(b)


class TestRandomPolicyRegression:
    """The rewrite must keep seeded determinism and O(1) victim draws."""

    def test_same_seed_same_evictions(self):
        a, snap_a, _ = run_trace(make_policy("random", seed=3))
        b, snap_b, _ = run_trace(make_policy("random", seed=3))
        assert a == b and snap_a == snap_b

    def test_different_seed_different_evictions(self):
        a, _, _ = run_trace(make_policy("random", seed=3))
        b, _, _ = run_trace(make_policy("random", seed=4))
        assert a != b

    def test_one_eviction_draws_one_random_number(self):
        """Regression: victims() used to sort + shuffle the whole page
        set per eviction (O(n log n)); now one candidate costs one
        ``randrange`` draw on the live list."""

        class CountingRng:
            def __init__(self):
                self.calls = 0
                self._rng = random.Random(0)

            def randrange(self, n):
                self.calls += 1
                return self._rng.randrange(n)

        policy = make_policy("random", seed=0)
        rng = CountingRng()
        policy._rng = rng
        for pid in range(1000):
            policy.on_insert(pid)
        victim = next(iter(policy.victims()))
        assert rng.calls == 1
        policy.on_remove(victim)
        assert next(iter(policy.victims())) is not None
        assert rng.calls == 2

    def test_swap_remove_keeps_structures_consistent(self):
        policy = make_policy("random", seed=1)
        for pid in range(10):
            policy.on_insert(pid)
        for pid in (0, 9, 4, 4):  # including a double remove
            policy.on_remove(pid)
        assert sorted(policy._pages) == sorted(policy._slots) == [1, 2, 3, 5, 6, 7, 8]
        assert all(policy._pages[slot] == pid for pid, slot in policy._slots.items())

    def test_victims_terminates_when_pages_remain_fixed(self):
        """The bounded probe must exhaust instead of spinning forever."""
        policy = make_policy("random", seed=2)
        for pid in range(4):
            policy.on_insert(pid)
        consumed = list(policy.victims())
        assert len(consumed) == 2 * 4 + 1 + 4  # probes + deterministic tail
        assert set(consumed) == {0, 1, 2, 3}


class TestLRUK:
    def test_single_reference_pages_evicted_before_rereferenced(self):
        """LRU-2 scan resistance: a page referenced twice survives a
        stream of once-referenced pages even when older."""
        policy = LRUKPolicy(k=2)
        policy.on_insert(1)  # the page with history
        policy.on_access(1)  # second reference: finite K-distance
        for pid in (2, 3, 4):
            policy.on_insert(pid)  # one reference each: infinite distance
        order = list(policy.victims())
        assert order[:3] == [2, 3, 4]  # cold pages first, LRU among them
        assert order[3] == 1

    def test_k_distance_orders_hot_pages(self):
        policy = LRUKPolicy(k=2)
        policy.on_insert(1)
        policy.on_insert(2)
        policy.on_access(1)  # 1's 2nd-most-recent ref older than 2's
        policy.on_access(2)
        policy.on_access(2)  # 2 now has the more recent K-distance
        hot = [pid for pid in policy.victims()]
        assert hot == [1, 2]

    def test_rejects_bad_k(self):
        from repro.errors import BufferError_

        with pytest.raises(BufferError_):
            LRUKPolicy(k=0)

    def test_make_policy_kwargs(self):
        policy = make_policy("lru-k", k=3)
        assert policy._k == 3


class TestTwoQ:
    def test_ghost_promotion_survives_fifo_pressure(self):
        """A page evicted from A1in and re-referenced enters Am and
        outlives fresh single-access pages."""
        disk = SimulatedDisk(page_size=128)
        pids = disk.allocate_many(24)
        buf = BufferManager(disk, capacity=8, policy="2q")  # A1in≤2, ghost≤4
        hot = pids[0]
        buf.fix(hot)
        buf.unfix(hot)
        for pid in pids[1:10]:  # push hot out of A1in into the ghost queue
            buf.fix(pid)
            buf.unfix(pid)
        assert not buf.is_resident(hot)
        buf.fix(hot)  # ghost hit: promoted to Am on re-entry
        buf.unfix(hot)
        for pid in pids[10:22]:  # more one-shot pressure through A1in
            buf.fix(pid)
            buf.unfix(pid)
        assert buf.is_resident(hot)

    def test_discard_forgets_instead_of_remembering(self):
        policy = TwoQPolicy()
        policy.bind_capacity(8)
        policy.on_insert(1)
        policy.on_remove(1)  # discard: no ghost entry
        policy.on_insert(1)
        assert 1 in policy._a1in and 1 not in policy._am

    def test_eviction_remembers_ghost(self):
        policy = TwoQPolicy()
        policy.bind_capacity(8)
        policy.on_insert(1)
        policy.on_evict(1)
        policy.on_insert(1)  # ghost hit → straight into Am
        assert 1 in policy._am

    def test_cold_restart_clears_ghosts(self):
        """Regression: the ghost queue must not leak eviction history
        across a buffer clear — a cold restart is genuinely cold."""
        disk = SimulatedDisk(page_size=128)
        pids = disk.allocate_many(12)
        buf = BufferManager(disk, capacity=4, policy="2q")
        for pid in pids:  # enough pressure to populate A1out
            buf.fix(pid)
            buf.unfix(pid)
        assert buf.policy._a1out
        buf.clear()
        assert not buf.policy._a1out
        buf.fix(pids[0])  # after the restart: probation, not hot
        buf.unfix(pids[0])
        assert pids[0] in buf.policy._a1in and pids[0] not in buf.policy._am

    def test_rejects_bad_fractions(self):
        from repro.errors import BufferError_

        with pytest.raises(BufferError_):
            TwoQPolicy(a1_fraction=1.5)
        with pytest.raises(BufferError_):
            TwoQPolicy(out_fraction=0)


class TestLazyVictimIterators:
    """LRU/FIFO victims() must not copy the whole order per eviction."""

    @pytest.mark.parametrize("policy_name", ["lru", "fifo"])
    def test_first_victim_without_materialising(self, policy_name):
        policy = make_policy(policy_name)
        for pid in range(10_000):
            policy.on_insert(pid)
        iterator = policy.victims()
        assert next(iter(iterator)) == 0
        # The eviction pattern: remove the chosen victim, abandon the
        # iterator — and the next eviction sees the updated order.
        policy.on_remove(0)
        assert next(iter(policy.victims())) == 1
