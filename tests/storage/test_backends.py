"""Unit tests for the pluggable disk backends and trace replay."""

import json
import os

import pytest

from repro.errors import InvalidAddressError, StorageError
from repro.storage.backends import (
    BACKEND_NAMES,
    DirectBackend,
    FileBackend,
    MemoryBackend,
    MmapBackend,
    TraceBackend,
    TraceEvent,
    contiguous_runs,
    load_trace,
    make_backend,
    replay_trace,
)
from repro.storage.disk import SimulatedDisk

PAGE = 256

#: O_DIRECT needs 512-byte-aligned transfers; tests that want the
#: direct path genuinely active use this page size.
DIRECT_PAGE = 2048


@pytest.fixture(params=["memory", "file", "mmap", "direct", "trace"])
def backend(request, tmp_path):
    if request.param == "file":
        b = FileBackend(PAGE, path=str(tmp_path / "disk.pages"))
    elif request.param == "mmap":
        b = MmapBackend(PAGE, path=str(tmp_path / "disk.pages"))
    elif request.param == "direct":
        # PAGE is not 512-aligned, so this runs the buffered-fallback
        # path — the contract must hold there too; the genuinely-direct
        # path is covered by TestDirectBackend with DIRECT_PAGE.
        b = DirectBackend(PAGE, path=str(tmp_path / "disk.pages"))
    elif request.param == "trace":
        b = TraceBackend(MemoryBackend(PAGE), path=str(tmp_path / "trace.jsonl"))
    else:
        b = MemoryBackend(PAGE)
    yield b
    b.close()


class TestBackendContract:
    """Every backend obeys the same read/write/allocate semantics."""

    def test_allocated_pages_zeroed(self, backend):
        backend.allocate_run(0, 3)
        assert backend.read_run([0, 1, 2]) == [bytes(PAGE)] * 3

    def test_write_then_read(self, backend):
        backend.allocate_run(0, 2)
        backend.write_run([(0, b"\x01" * PAGE), (1, b"\x02" * PAGE)])
        assert backend.read_run([1, 0]) == [b"\x02" * PAGE, b"\x01" * PAGE]

    def test_noncontiguous_run(self, backend):
        backend.allocate_run(0, 5)
        backend.write_run([(0, b"a" * PAGE), (2, b"c" * PAGE), (4, b"e" * PAGE)])
        assert backend.read_run([4, 0, 2]) == [
            b"e" * PAGE,
            b"a" * PAGE,
            b"c" * PAGE,
        ]

    def test_sync_is_safe(self, backend):
        backend.allocate_run(0, 1)
        backend.sync()


class TestFileBackend:
    def test_bytes_land_in_file(self, tmp_path):
        path = str(tmp_path / "disk.pages")
        b = FileBackend(PAGE, path=path)
        b.allocate_run(0, 2)
        b.write_run([(1, b"\x07" * PAGE)])
        b.sync()
        with open(path, "rb") as handle:
            raw = handle.read()
        assert raw == bytes(PAGE) + b"\x07" * PAGE
        b.close()

    def test_anonymous_file_removed_on_close(self):
        b = FileBackend(PAGE)
        path = b.path
        assert os.path.exists(path)
        b.close()
        assert not os.path.exists(path)

    def test_closed_backend_rejects_io(self):
        b = FileBackend(PAGE)
        b.close()
        with pytest.raises(StorageError):
            b.read_run([0])

    def test_close_idempotent(self):
        b = FileBackend(PAGE)
        b.close()
        b.close()

    def test_reopened_named_path_truncated(self, tmp_path):
        """A backend is a fresh store: stale bytes from a previous run
        must not leak into newly allocated pages."""
        path = str(tmp_path / "disk.pages")
        first = FileBackend(PAGE, path=path)
        first.allocate_run(0, 2)
        first.write_run([(0, b"old" * (PAGE // 3) + b"o"), (1, b"\xaa" * PAGE)])
        first.close()
        second = FileBackend(PAGE, path=path)
        second.allocate_run(0, 2)
        assert second.read_run([0, 1]) == [bytes(PAGE)] * 2
        second.close()

    def test_failed_open_does_not_break_gc(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FileBackend(PAGE, path=str(tmp_path / "missing-dir" / "f.pages"))

    def test_recycled_region_rezeroed(self, tmp_path):
        b = FileBackend(PAGE, path=str(tmp_path / "disk.pages"))
        b.allocate_run(0, 2)
        b.write_run([(0, b"x" * PAGE)])
        b.free(0)
        b.allocate_run(0, 1)
        assert b.read_run([0]) == [bytes(PAGE)]
        b.close()

    def test_stretch_longer_than_iov_max(self, tmp_path):
        """A contiguous run above IOV_MAX must be chunked, not EINVAL."""
        from repro.storage import backends

        n = backends._IOV_MAX + 25
        b = FileBackend(PAGE, path=str(tmp_path / "big.pages"))
        b.allocate_run(0, n)
        b.write_run([(i, bytes([i % 251]) * PAGE) for i in range(n)])
        images = b.read_run(list(range(n)))
        assert images == [bytes([i % 251]) * PAGE for i in range(n)]
        b.close()

    def test_context_manager_closes(self, tmp_path):
        with FileBackend(PAGE, path=str(tmp_path / "cm.pages")) as b:
            b.allocate_run(0, 1)
            b.write_run([(0, b"c" * PAGE)])
            assert b.read_run([0]) == [b"c" * PAGE]
        with pytest.raises(StorageError):
            b.read_run([0])

    def test_entering_closed_backend_raises(self):
        b = FileBackend(PAGE)
        b.close()
        with pytest.raises(StorageError):
            with b:
                pass  # pragma: no cover - never entered

    def test_fsync_flag_round_trips_data(self, tmp_path):
        path = str(tmp_path / "durable.pages")
        with FileBackend(PAGE, path=path, fsync=True) as b:
            assert b.fsync is True
            b.allocate_run(0, 2)
            b.write_run([(0, b"d" * PAGE), (1, b"e" * PAGE)])
            assert b.read_run([0, 1]) == [b"d" * PAGE, b"e" * PAGE]
        # Default stays off: the simulator's speed path.
        b2 = FileBackend(PAGE)
        assert b2.fsync is False
        b2.close()

    def test_straddling_allocation_rezeroed(self, tmp_path):
        """An allocation overlapping the old extent AND growing the file
        must zero both parts, not just the grown tail."""
        b = FileBackend(PAGE, path=str(tmp_path / "disk.pages"))
        b.allocate_run(0, 2)
        b.write_run([(1, b"x" * PAGE)])
        b.free(1)
        b.allocate_run(1, 2)  # page 1 recycled, page 2 new
        assert b.read_run([1, 2]) == [bytes(PAGE)] * 2
        b.close()


class TestTraceBackend:
    def test_records_calls_in_order(self):
        b = TraceBackend(MemoryBackend(PAGE))
        b.allocate_run(0, 2)
        b.write_run([(0, b"q" * PAGE)])
        b.read_run([0, 1])
        b.free(1)
        b.sync()
        assert [e.op for e in b.events] == [
            "allocate",
            "write",
            "read",
            "free",
            "sync",
        ]
        assert b.events[2].pages == (0, 1)
        assert [e.seq for e in b.events] == [0, 1, 2, 3, 4]
        assert all(e.t >= 0.0 for e in b.events)

    def test_jsonl_lines_parse(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        b = TraceBackend(MemoryBackend(PAGE), path=path)
        b.allocate_run(0, 1)
        b.write_run([(0, b"z" * PAGE)])
        b.close()
        with open(path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert [r["op"] for r in records] == ["allocate", "write"]
        assert records[1]["pages"] == [0]
        assert bytes.fromhex(records[1]["data"][0]) == b"z" * PAGE

    def test_streaming_trace_keeps_payloads_in_file_only(self, tmp_path):
        """With a JSONL path the write payloads go to the file, not RAM."""
        path = str(tmp_path / "trace.jsonl")
        b = TraceBackend(MemoryBackend(PAGE), path=path)
        b.allocate_run(0, 1)
        b.write_run([(0, b"p" * PAGE)])
        assert b.events[1].data is None
        b.close()
        events = load_trace(path)
        assert events[1].data == (b"p" * PAGE,)

    def test_load_trace_round_trips_events(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        b = TraceBackend(MemoryBackend(PAGE), path=path)
        b.allocate_run(0, 2)
        b.write_run([(1, b"k" * PAGE)])
        b.close()
        events = load_trace(path)
        assert events == [
            TraceEvent(0, events[0].t, "allocate", (0, 1)),
            TraceEvent(1, events[1].t, "write", (1,), (b"k" * PAGE,)),
        ]

    def test_replay_reproduces_page_contents(self, tmp_path):
        """Satellite acceptance: a recorded trace replays to the same
        page contents on a fresh backend."""
        path = str(tmp_path / "trace.jsonl")
        traced = TraceBackend(MemoryBackend(PAGE), path=path)
        disk = SimulatedDisk(page_size=PAGE, backend=traced)
        pids = disk.allocate_many(6)
        disk.write_pages((pid, bytes([pid + 1]) * PAGE) for pid in pids[:4])
        disk.write_page(pids[5], b"\xff" * PAGE)
        disk.free(pids[4])
        disk.sync()
        disk.close()

        replayed = MemoryBackend(PAGE)
        n = replay_trace(path, replayed)
        assert n == len(load_trace(path))
        live = [pid for pid in pids if pid != pids[4]]
        assert replayed.read_run(live) == traced.inner.read_run(live)

    def test_replay_onto_file_backend(self, tmp_path):
        traced = TraceBackend(MemoryBackend(PAGE))
        traced.allocate_run(0, 3)
        traced.write_run([(0, b"A" * PAGE), (2, b"C" * PAGE)])
        replayed = FileBackend(PAGE, path=str(tmp_path / "replayed.pages"))
        replay_trace(traced.events, replayed)
        assert replayed.read_run([0, 1, 2]) == traced.inner.read_run([0, 1, 2])
        replayed.close()

    def test_replay_rejects_unknown_op(self):
        with pytest.raises(StorageError):
            replay_trace([TraceEvent(0, 0.0, "defrag", (1,))], MemoryBackend(PAGE))

    def test_replay_of_streamed_events_has_clear_error(self, tmp_path):
        """Streamed traces strip payloads from memory; replaying the
        in-memory events must say to use load_trace, not crash."""
        b = TraceBackend(MemoryBackend(PAGE), path=str(tmp_path / "t.jsonl"))
        b.allocate_run(0, 1)
        b.write_run([(0, b"s" * PAGE)])
        b.close()
        with pytest.raises(StorageError, match="load_trace"):
            replay_trace(b.events, MemoryBackend(PAGE))

    def test_snapshot_recorded_and_replay_skips_it(self):
        """Snapshots are lifecycle events: recorded for completeness,
        no-ops on replay (taking one never changed the page store)."""
        b = TraceBackend(MemoryBackend(PAGE))
        b.allocate_run(0, 1)
        b.write_run([(0, b"v" * PAGE)])
        image = b.snapshot()
        assert [e.op for e in b.events] == ["allocate", "write", "snapshot"]
        assert b.events[-1].data is None
        replayed = MemoryBackend(PAGE)
        assert replay_trace(b.events, replayed) == 3
        assert replayed.read_run([0]) == [b"v" * PAGE]
        assert image[0] == b"v" * PAGE

    def test_replay_rejects_restore_events(self):
        """A restore's page images are not in the trace, so replaying
        one cannot reproduce the store — refuse with a clear error."""
        b = TraceBackend(MemoryBackend(PAGE))
        b.allocate_run(0, 1)
        image = b.snapshot()
        b.restore(image)
        assert [e.op for e in b.events] == ["allocate", "snapshot", "restore"]
        with pytest.raises(StorageError, match="restore"):
            replay_trace(b.events, MemoryBackend(PAGE))

    def test_fault_shaped_trace_replays_faithfully(self, tmp_path):
        """A trace shaped like a faulted run — a page rewritten after a
        torn first image, a half-written batch cut short by a crash —
        replays to exactly the bytes it records (satellite: fault/crash
        event replay)."""
        path = str(tmp_path / "faulty.jsonl")
        b = TraceBackend(MemoryBackend(PAGE), path=path)
        b.allocate_run(0, 4)
        torn = b"t" * (PAGE // 2) + b"\x00" * (PAGE - PAGE // 2)
        b.write_run([(0, torn)])            # torn image hits the platter
        b.read_run([0])                     # checksum read finds the tear
        b.write_run([(0, b"T" * PAGE)])     # healing rewrite
        b.write_run([(1, b"p" * PAGE)])     # crash: prefix of a 3-page batch
        b.sync()
        b.close()
        replayed = MemoryBackend(PAGE)
        replay_trace(path, replayed)
        assert replayed.read_run([0, 1, 2, 3]) == [
            b"T" * PAGE,
            b"p" * PAGE,
            bytes(PAGE),
            bytes(PAGE),
        ]


class TestMmapBackend:
    def test_reads_are_zero_copy_views(self, tmp_path):
        b = MmapBackend(PAGE, path=str(tmp_path / "disk.pages"))
        b.allocate_run(0, 2)
        b.write_run([(1, b"m" * PAGE)])
        views = b.read_run([0, 1])
        assert all(isinstance(v, memoryview) and v.readonly for v in views)
        assert bytes(views[1]) == b"m" * PAGE
        b.close()

    def test_zero_copy_flag(self, tmp_path):
        assert MmapBackend.zero_copy is True
        assert FileBackend.zero_copy is False
        assert DirectBackend.zero_copy is False

    def test_view_stays_coherent_across_remap(self, tmp_path):
        """Growth retires the old mapping instead of resizing it; a
        view exported before the remap keeps seeing current bytes
        (MAP_SHARED mappings of one file are coherent)."""
        from repro.storage.backends import _MMAP_INITIAL_PAGES

        b = MmapBackend(PAGE, path=str(tmp_path / "disk.pages"))
        b.allocate_run(0, 4)
        b.write_run([(2, b"A" * PAGE)])
        view = b.read_run([2])[0]
        b.allocate_run(4, _MMAP_INITIAL_PAGES * 4)  # forces a remap
        b.write_run([(2, b"B" * PAGE)])
        assert bytes(view) == b"B" * PAGE
        b.close()

    def test_snapshot_restore_round_trip(self, tmp_path):
        b = MmapBackend(PAGE, path=str(tmp_path / "disk.pages"))
        b.allocate_run(0, 3)
        b.write_run([(0, b"x" * PAGE), (2, b"z" * PAGE)])
        image = b.snapshot()
        b.write_run([(0, b"!" * PAGE)])
        b.restore(image)
        assert [bytes(v) for v in b.read_run([0, 1, 2])] == [
            b"x" * PAGE,
            bytes(PAGE),
            b"z" * PAGE,
        ]
        b.close()

    def test_recycled_region_rezeroed(self, tmp_path):
        b = MmapBackend(PAGE, path=str(tmp_path / "disk.pages"))
        b.allocate_run(0, 2)
        b.write_run([(0, b"x" * PAGE)])
        b.free(0)
        b.allocate_run(0, 1)
        assert bytes(b.read_run([0])[0]) == bytes(PAGE)
        b.close()

    def test_anonymous_file_removed_on_close(self):
        b = MmapBackend(PAGE)
        path = b.path
        b.allocate_run(0, 1)
        assert os.path.exists(path)
        b.close()
        assert not os.path.exists(path)

    def test_close_idempotent_and_rejects_io(self, tmp_path):
        b = MmapBackend(PAGE, path=str(tmp_path / "disk.pages"))
        b.allocate_run(0, 1)
        b.close()
        b.close()
        with pytest.raises(StorageError):
            b.read_run([0])

    def test_close_with_exported_views_then_writeback(self, tmp_path):
        """Closing while frames still hold views must not crash; the
        views stay readable (their refcount keeps the mapping alive)."""
        b = MmapBackend(PAGE, path=str(tmp_path / "disk.pages"))
        b.allocate_run(0, 1)
        b.write_run([(0, b"k" * PAGE)])
        view = b.read_run([0])[0]
        b.close()
        assert bytes(view) == b"k" * PAGE

    def test_context_manager_closes(self, tmp_path):
        with MmapBackend(PAGE, path=str(tmp_path / "cm.pages")) as b:
            b.allocate_run(0, 1)
            b.write_run([(0, b"c" * PAGE)])
            assert bytes(b.read_run([0])[0]) == b"c" * PAGE
        with pytest.raises(StorageError):
            b.read_run([0])

    def test_sync_flushes_mapping_to_file(self, tmp_path):
        path = str(tmp_path / "disk.pages")
        b = MmapBackend(PAGE, path=path)
        b.allocate_run(0, 2)
        b.write_run([(1, b"\x07" * PAGE)])
        b.sync()
        with open(path, "rb") as handle:
            raw = handle.read(2 * PAGE)
        assert raw == bytes(PAGE) + b"\x07" * PAGE
        b.close()


class TestDirectBackend:
    def test_round_trip_regardless_of_support(self, tmp_path):
        b = DirectBackend(DIRECT_PAGE, path=str(tmp_path / "disk.pages"))
        b.allocate_run(0, 8)
        b.write_run([(i, bytes([i + 1]) * DIRECT_PAGE) for i in range(8)])
        assert b.read_run(list(range(8))) == [
            bytes([i + 1]) * DIRECT_PAGE for i in range(8)
        ]
        image = b.snapshot()
        assert image[5] == bytes([6]) * DIRECT_PAGE
        b.restore(image)
        assert b.read_run([7]) == [bytes([8]) * DIRECT_PAGE]
        b.close()

    def test_unaligned_page_size_falls_back(self, tmp_path):
        b = DirectBackend(PAGE, path=str(tmp_path / "disk.pages"))
        assert b.o_direct is False
        assert "multiple of 512" in b.fallback_reason
        b.allocate_run(0, 1)
        b.write_run([(0, b"f" * PAGE)])
        assert b.read_run([0]) == [b"f" * PAGE]
        b.close()

    def test_fallback_false_raises_when_unsupported(self, tmp_path):
        with pytest.raises(StorageError, match="O_DIRECT unavailable"):
            DirectBackend(PAGE, path=str(tmp_path / "disk.pages"), fallback=False)

    def test_o_direct_active_when_probe_says_so(self, tmp_path):
        if not DirectBackend.probe(str(tmp_path), DIRECT_PAGE):
            pytest.skip("filesystem does not support O_DIRECT")
        b = DirectBackend(DIRECT_PAGE, path=str(tmp_path / "disk.pages"))
        assert b.o_direct is True
        assert b.fallback_reason is None
        b.allocate_run(0, 4)
        b.write_run([(2, b"d" * DIRECT_PAGE)])
        assert b.read_run([2]) == [b"d" * DIRECT_PAGE]
        b.close()

    def test_probe_returns_bool(self, tmp_path):
        assert DirectBackend.probe(str(tmp_path), DIRECT_PAGE) in (True, False)

    def test_close_idempotent_and_rejects_io(self, tmp_path):
        b = DirectBackend(DIRECT_PAGE, path=str(tmp_path / "disk.pages"))
        b.allocate_run(0, 1)
        b.close()
        b.close()
        with pytest.raises(StorageError):
            b.read_run([0])

    def test_context_manager_closes(self, tmp_path):
        with DirectBackend(DIRECT_PAGE, path=str(tmp_path / "cm.pages")) as b:
            b.allocate_run(0, 1)
            b.write_run([(0, b"c" * DIRECT_PAGE)])
            assert b.read_run([0]) == [b"c" * DIRECT_PAGE]
        with pytest.raises(StorageError):
            b.read_run([0])

    def test_anonymous_file_removed_on_close(self):
        b = DirectBackend(DIRECT_PAGE)
        path = b.path
        b.close()
        assert not os.path.exists(path)

    def test_long_stretch_chunked(self, tmp_path):
        """A stretch larger than the bounce chunk loops, not EINVALs."""
        from repro.storage import backends

        old_chunk = backends._DIRECT_CHUNK
        backends._DIRECT_CHUNK = 4 * DIRECT_PAGE
        try:
            b = DirectBackend(DIRECT_PAGE, path=str(tmp_path / "big.pages"))
            n = 19  # not a multiple of the 4-page chunk
            b.allocate_run(0, n)
            b.write_run([(i, bytes([i + 1]) * DIRECT_PAGE) for i in range(n)])
            assert b.read_run(list(range(n))) == [
                bytes([i + 1]) * DIRECT_PAGE for i in range(n)
            ]
            b.close()
        finally:
            backends._DIRECT_CHUNK = old_chunk


class TestContiguousRuns:
    def test_negative_page_id_rejected_with_typed_error(self):
        with pytest.raises(InvalidAddressError, match="negative page id"):
            list(contiguous_runs([3, 4, -1]))

    def test_run_exactly_at_max_len_not_split(self):
        runs = list(contiguous_runs(list(range(10, 18)), max_len=8))
        assert runs == [list(range(10, 18))]

    def test_run_above_max_len_splits_at_cap(self):
        runs = list(contiguous_runs(list(range(20)), max_len=8))
        assert [len(r) for r in runs] == [8, 8, 4]
        assert [pid for run in runs for pid in run] == list(range(20))

    def test_duplicate_page_ids_split_runs(self):
        """A repeated id cannot extend a run (it is not adjacent to
        itself); order and multiplicity are preserved across runs."""
        runs = list(contiguous_runs([5, 5, 6, 6, 7]))
        assert [pid for run in runs for pid in run] == [5, 5, 6, 6, 7]
        for run in runs:
            assert all(b == a + 1 for a, b in zip(run, run[1:]))

    @pytest.mark.parametrize("max_len", [None, 1, 3, 8, 1024])
    def test_property_cover_order_adjacency(self, max_len):
        """Every input id appears exactly once, in order; every run is
        strictly adjacent and within the cap."""
        import random

        rng = random.Random(9)
        ids = [rng.randrange(0, 40) for _ in range(200)]
        runs = list(contiguous_runs(ids, max_len=max_len))
        assert [pid for run in runs for pid in run] == ids
        for run in runs:
            assert all(b == a + 1 for a, b in zip(run, run[1:]))
            if max_len is not None:
                assert len(run) <= max_len


class TestMakeBackend:
    def test_known_names(self):
        assert set(BACKEND_NAMES) == {"memory", "file", "mmap", "direct", "trace"}
        for name in BACKEND_NAMES:
            b = make_backend(name, PAGE)
            assert b.name == name
            b.close()

    def test_instance_passes_through(self):
        b = MemoryBackend(PAGE)
        assert make_backend(b) is b

    def test_unknown_name_rejected(self):
        with pytest.raises(StorageError):
            make_backend("cloud", PAGE)


class TestDiskOverBackends:
    """The disk's accounting and validation are backend-independent."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_identical_metrics_across_backends(self, name, tmp_path):
        disk = SimulatedDisk(
            page_size=PAGE,
            backend=name,
            backend_path=(
                str(tmp_path / f"disk-{name}") if name != "memory" else None
            ),
        )
        pids = disk.allocate_many(8)
        disk.read_pages(pids[:5])
        disk.read_page(pids[6])
        disk.write_pages((pid, b"w" * PAGE) for pid in pids[:3])
        snap = disk.metrics.snapshot()
        assert (snap.read_calls, snap.pages_read) == (2, 6)
        assert (snap.write_calls, snap.pages_written) == (1, 3)
        disk.close()

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_contents_survive_round_trip(self, name, tmp_path):
        disk = SimulatedDisk(
            page_size=PAGE,
            backend=name,
            backend_path=(
                str(tmp_path / f"rt-{name}") if name != "memory" else None
            ),
        )
        pids = disk.allocate_many(4)
        disk.write_pages((pid, bytes([pid]) * PAGE) for pid in pids)
        assert disk.read_pages(pids) == [bytes([pid]) * PAGE for pid in pids]
        disk.close()
