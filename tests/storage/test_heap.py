"""Unit tests for heap files."""

import pytest

from repro.errors import StorageError
from repro.nf2.oid import Rid
from repro.storage import StorageEngine


@pytest.fixture
def heap():
    return StorageEngine(buffer_pages=50).new_heap("r")


class TestInsertRead:
    def test_roundtrip(self, heap):
        rid = heap.insert(b"hello")
        assert heap.read(rid) == b"hello"

    def test_records_pack_onto_pages(self, heap):
        rids = [heap.insert(b"x" * 170) for _ in range(22)]
        # 2012 usable / 174 -> 11 per page -> 2 pages for 22 records.
        assert heap.n_pages == 2
        assert rids[0].page_id == rids[10].page_id
        assert rids[0].page_id != rids[11].page_id

    def test_oversized_record_rejected(self, heap):
        with pytest.raises(StorageError):
            heap.insert(b"x" * 4000)

    def test_read_foreign_page_rejected(self, heap):
        heap.insert(b"x")
        with pytest.raises(StorageError):
            heap.read(Rid(9999, 0))

    def test_variable_sizes_fill_pages(self, heap):
        sizes = [100, 900, 800, 300, 50]
        rids = [heap.insert(bytes([i]) * s) for i, s in enumerate(sizes)]
        for i, (rid, size) in enumerate(zip(rids, sizes)):
            assert heap.read(rid) == bytes([i]) * size

    def test_count_records(self, heap):
        for i in range(7):
            heap.insert(bytes([i]))
        assert heap.count_records() == 7


class TestReadMany:
    def test_single_call_for_page_set(self, heap):
        rids = [heap.insert(bytes([i]) * 400) for i in range(12)]  # several pages
        heap.segment.disk.metrics.reset()
        heap.buffer.clear()
        heap.segment.disk.metrics.reset()
        records = heap.read_many(rids)
        assert records == [bytes([i]) * 400 for i in range(12)]
        snap = heap.segment.disk.metrics.snapshot()
        assert snap.read_calls == 1

    def test_order_preserved_with_duplicates(self, heap):
        a = heap.insert(b"a")
        b = heap.insert(b"b")
        assert heap.read_many([b, a, b]) == [b"b", b"a", b"b"]

    def test_empty_list(self, heap):
        assert heap.read_many([]) == []


class TestUpdate:
    def test_same_size_update(self, heap):
        rid = heap.insert(b"aaaa")
        heap.update(rid, b"bbbb")
        assert heap.read(rid) == b"bbbb"

    def test_update_deferred_write(self, heap):
        rid = heap.insert(b"aaaa")
        heap.buffer.flush()
        heap.segment.disk.metrics.reset()
        heap.update(rid, b"cccc")
        assert heap.segment.disk.metrics.snapshot().pages_written == 0
        heap.buffer.flush()
        assert heap.segment.disk.metrics.snapshot().pages_written == 1

    def test_update_write_through(self, heap):
        """The DASDBS page-pool path: one immediate single-page write."""
        rid = heap.insert(b"aaaa")
        heap.buffer.flush()
        heap.segment.disk.metrics.reset()
        heap.update(rid, b"dddd", write_through=True)
        snap = heap.segment.disk.metrics.snapshot()
        assert snap.write_calls == 1
        assert snap.pages_written == 1
        heap.buffer.flush()
        assert heap.segment.disk.metrics.snapshot().pages_written == 1  # no double write

    def test_delete(self, heap):
        rid = heap.insert(b"x")
        heap.delete(rid)
        assert heap.count_records() == 0


class TestScan:
    def test_scan_in_storage_order(self, heap):
        payloads = [bytes([i]) * 50 for i in range(30)]
        for payload in payloads:
            heap.insert(payload)
        assert [record for _, record in heap.scan()] == payloads

    def test_scan_fixes_each_page_once(self, heap):
        for i in range(30):
            heap.insert(bytes([i]) * 150)
        heap.segment.disk.metrics.reset()
        list(heap.scan())
        assert heap.segment.disk.metrics.snapshot().page_fixes == heap.n_pages

    def test_scan_filter(self, heap):
        for i in range(10):
            heap.insert(bytes([i]))
        matches = heap.scan_filter(lambda record: record[0] % 2 == 0)
        assert len(matches) == 5


class TestZeroCopyReads:
    """read_many's zero-copy contract: views, decoded immediately."""

    def test_read_many_returns_memoryviews(self, heap):
        rids = [heap.insert(bytes([i]) * 40) for i in range(6)]
        records = heap.read_many(rids)
        assert all(isinstance(record, memoryview) for record in records)
        assert [bytes(record) for record in records] == [
            bytes([i]) * 40 for i in range(6)
        ]

    def test_views_alias_the_live_page(self, heap):
        """Documents the contract: a view reflects later page mutations,
        which is why callers must decode before the next write."""
        rid = heap.insert(b"aaaa")
        (view,) = heap.read_many([rid])
        heap.update(rid, b"bbbb")
        assert bytes(view) == b"bbbb"

    def test_read_many_after_update_and_delete(self, heap):
        rids = [heap.insert(bytes([i]) * 20) for i in range(8)]
        heap.update(rids[2], b"\xaa" * 20)
        heap.delete(rids[5])
        live = [rid for rid in rids if rid != rids[5]]
        records = heap.read_many(live)
        assert bytes(records[2]) == b"\xaa" * 20
        assert bytes(records[-1]) == bytes([7]) * 20
