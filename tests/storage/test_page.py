"""Unit and property tests for slotted pages."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidAddressError, PageOverflowError, StorageError
from repro.storage.page import SlottedPage


def make_page(size=512):
    return SlottedPage(bytearray(size), size)


class TestBasicOperations:
    def test_fresh_page_is_empty(self):
        page = make_page()
        assert page.n_slots == 0
        assert page.live_records == 0

    def test_insert_read(self):
        page = make_page()
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_sequential_slots(self):
        page = make_page()
        assert [page.insert(b"x") for _ in range(4)] == [0, 1, 2, 3]

    def test_read_bad_slot(self):
        page = make_page()
        with pytest.raises(InvalidAddressError):
            page.read(0)

    def test_max_record_size(self):
        size = SlottedPage.max_record_size(512)
        page = make_page()
        page.insert(b"x" * size)
        with pytest.raises(PageOverflowError):
            make_page().insert(b"x" * (size + 1))

    def test_free_space_decreases(self):
        page = make_page()
        before = page.free_space
        page.insert(b"x" * 50)
        assert page.free_space == before - 50 - 4

    def test_overflow_raises(self):
        page = make_page()
        page.insert(b"x" * 400)
        with pytest.raises(PageOverflowError):
            page.insert(b"y" * 400)

    def test_view_reconstruction(self):
        """A page view over existing bytes sees the stored records."""
        buf = bytearray(512)
        page = SlottedPage(buf, 512)
        page.insert(b"persistent")
        again = SlottedPage(buf, 512)
        assert again.read(0) == b"persistent"

    def test_wrong_buffer_size_rejected(self):
        with pytest.raises(StorageError):
            SlottedPage(bytearray(100), 512)


class TestUpdate:
    def test_same_size_in_place(self):
        page = make_page()
        slot = page.insert(b"aaaa")
        page.update(slot, b"bbbb")
        assert page.read(slot) == b"bbbb"

    def test_shrinking(self):
        page = make_page()
        slot = page.insert(b"aaaaaaaa")
        page.update(slot, b"bb")
        assert page.read(slot) == b"bb"

    def test_growing_within_space(self):
        page = make_page()
        slot = page.insert(b"aa")
        page.update(slot, b"bbbbbbbb")
        assert page.read(slot) == b"bbbbbbbb"

    def test_growing_requires_compaction(self):
        page = make_page()
        a = page.insert(b"a" * 150)
        b = page.insert(b"b" * 150)
        page.update(a, b"c" * 100)  # leaves a 50-byte hole
        grow = 150 + page.free_space  # only fits after compaction
        page.update(b, b"d" * min(grow, 300))
        assert page.read(b)[:1] == b"d"

    def test_growing_beyond_page_rejected(self):
        page = make_page()
        slot = page.insert(b"a" * 100)
        with pytest.raises(PageOverflowError):
            page.update(slot, b"b" * 600)

    def test_update_deleted_rejected(self):
        page = make_page()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(InvalidAddressError):
            page.update(slot, b"y")


class TestDelete:
    def test_delete_tombstones(self):
        page = make_page()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(InvalidAddressError):
            page.read(slot)

    def test_double_delete_rejected(self):
        page = make_page()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(InvalidAddressError):
            page.delete(slot)

    def test_other_records_survive_delete(self):
        page = make_page()
        a = page.insert(b"aa")
        b = page.insert(b"bb")
        page.delete(a)
        assert page.read(b) == b"bb"
        assert page.live_records == 1

    def test_records_iterator_skips_deleted(self):
        page = make_page()
        page.insert(b"aa")
        b = page.insert(b"bb")
        page.insert(b"cc")
        page.delete(b)
        assert [rec for _, rec in page.records()] == [b"aa", b"cc"]


class TestCompaction:
    def test_compact_preserves_records(self):
        page = make_page()
        slots = [page.insert(bytes([i]) * 20) for i in range(5)]
        page.delete(slots[1])
        page.delete(slots[3])
        page.compact()
        for i in (0, 2, 4):
            assert page.read(slots[i]) == bytes([i]) * 20

    def test_compact_reclaims_space(self):
        page = make_page()
        slots = [page.insert(b"x" * 80) for _ in range(4)]
        for slot in slots[:3]:
            page.delete(slot)
        page.compact()
        page.insert(b"y" * 200)  # reclaimed room

    def test_used_bytes(self):
        page = make_page()
        page.insert(b"x" * 30)
        page.insert(b"y" * 20)
        assert page.used_bytes == 50


# -- property-based -----------------------------------------------------------

ops = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "update"]), st.binary(min_size=1, max_size=40)),
    max_size=30,
)


@given(ops)
@settings(max_examples=60)
def test_property_page_model_equivalence(operations):
    """The slotted page behaves like a dict from slot to bytes."""
    page = make_page(2048)
    model: dict[int, bytes] = {}
    live: list[int] = []
    for op, payload in operations:
        if op == "insert":
            try:
                slot = page.insert(payload)
            except PageOverflowError:
                continue
            model[slot] = payload
            live.append(slot)
        elif op == "delete" and live:
            slot = live.pop(0)
            page.delete(slot)
            del model[slot]
        elif op == "update" and live:
            slot = live[0]
            try:
                page.update(slot, payload)
            except PageOverflowError:
                continue
            model[slot] = payload
    assert {slot: rec for slot, rec in page.records()} == model
    assert page.live_records == len(model)


class TestHeaderCache:
    """The cached header ints must stay consistent with the buffer.

    The view caches ``n_slots``/``free_start`` as plain ints; every
    mutator keeps cache and bytes in sync, a fresh view re-reads the
    bytes, and ``format()`` re-syncs a view whose buffer was mutated
    behind its back.
    """

    def test_fresh_view_adopts_external_state(self):
        page = make_page()
        page.insert(b"alpha")
        page.insert(b"beta")
        # A second view over the same (externally produced) buffer sees
        # the same records without any shared Python state.
        reread = SlottedPage(page.data, page.page_size)
        assert reread.n_slots == 2
        assert reread.read(0) == b"alpha"
        assert reread.free_space == page.free_space

    def test_external_mutation_roundtrips_through_format(self):
        page = make_page()
        page.insert(b"doomed")
        # Clobber the raw buffer behind the view's back (a freed page
        # being recycled, a test poking at bytes): the view's cache is
        # now stale by design...
        page.data[:] = bytes(page.page_size)
        # ...and format() is the documented way to re-sync: afterwards
        # the view must behave exactly like a fresh empty page.
        page.format()
        assert page.n_slots == 0
        assert page.free_space == make_page().free_space
        slot = page.insert(b"reborn")
        assert page.read(slot) == b"reborn"
        assert SlottedPage(page.data, page.page_size).read(slot) == b"reborn"

    def test_free_space_single_header_read_consistency(self):
        page = make_page()
        expected = page.page_size - 36 - 4  # header, one slot entry
        for index in range(5):
            record = bytes([index]) * 10
            page.insert(record)
            expected -= len(record) + 4
            assert page.free_space == expected

    def test_cache_survives_every_mutator(self):
        page = make_page()
        a = page.insert(b"a" * 20)
        b = page.insert(b"b" * 20)
        page.update(a, b"A" * 20)
        page.delete(b)
        page.compact()
        reread = SlottedPage(page.data, page.page_size)
        assert (page.n_slots, page._free_start) == (reread.n_slots, reread._free_start)
        assert page.free_space == reread.free_space
        assert page.records() == reread.records()
