"""HeapFile.move_records: the bounded, partial sibling of recluster.

Pins the storage-level contract the online controller builds on:
partial forwarding, the page budget, emptied-page recycling, and the
shared move tail that packs successive small batches like one big
rewrite instead of fragmenting a page per batch.
"""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage import StorageEngine


@pytest.fixture
def heap():
    engine = StorageEngine(buffer_pages=16)
    yield engine.new_heap("movetest")
    engine.close()


def _fill(heap, count, size=40):
    return [heap.insert(bytes([i % 251]) * size) for i in range(count)]


class TestBoundedMove:
    def test_forwarding_is_partial_and_resolves(self, heap):
        rids = _fill(heap, 30, size=400)  # ~5 records per 2 KB page
        forwarding = heap.move_records(rids, max_pages=1)
        assert 0 < len(forwarding) < len(rids)
        # Every record still readable through the folded map.
        folded = [forwarding.get(rid, rid) for rid in rids]
        assert heap.count_records() == 30
        contents = sorted(heap.read(rid) for rid in folded)
        assert contents == sorted(bytes([i % 251]) * 400 for i in range(30))

    def test_zero_budget_and_empty_batch_are_no_ops(self, heap):
        rids = _fill(heap, 5)
        assert heap.move_records(rids, 0) == {}
        assert heap.move_records([], 3) == {}

    def test_duplicate_rids_rejected(self, heap):
        rids = _fill(heap, 5)
        with pytest.raises(StorageError):
            heap.move_records([rids[0], rids[0]], 2)

    def test_foreign_page_rejected(self, heap):
        rids = _fill(heap, 3)
        from repro.nf2.oid import Rid

        with pytest.raises(StorageError):
            heap.move_records([Rid(rids[-1].page_id + 999, 0)], 2)

    def test_emptied_source_pages_are_released(self, heap):
        rids = _fill(heap, 40, size=400)
        old_pages = set(heap.segment.page_ids)
        forwarding = heap.move_records(rids, max_pages=len(old_pages) + 2)
        assert set(forwarding) == set(rids)
        for page_id in old_pages - set(heap.segment.page_ids):
            assert not heap.segment.disk.is_allocated(page_id)
        assert heap.count_records() == 40


class TestMoveTail:
    def test_successive_batches_share_the_tail_page(self, heap):
        rids = _fill(heap, 20, size=40)  # small: many fit one page
        first = heap.move_records(rids[:3], max_pages=2)
        second = heap.move_records(rids[3:6], max_pages=2)
        first_pages = {rid.page_id for rid in first.values()}
        second_pages = {rid.page_id for rid in second.values()}
        # The second batch resumed on the first batch's last page.
        assert first_pages & second_pages
        assert heap.count_records() == 20

    def test_recluster_resets_the_tail(self, heap):
        rids = _fill(heap, 12, size=40)
        moved = heap.move_records(rids[:3], max_pages=2)
        folded = [moved.get(rid, rid) for rid in rids]
        forwarding = heap.recluster(folded)
        tail_before = {rid.page_id for rid in moved.values()}
        after = heap.move_records(list(forwarding.values())[:3], max_pages=2)
        # The rewrite freed the old tail; the next batch must not
        # resume on a released page.
        assert not ({rid.page_id for rid in after.values()} & tail_before)
        assert heap.count_records() == 12
