"""Golden parity of the online-recluster axis (counters are sacred).

The online controller is opt-in machinery: with it absent — or present
but forbidden to move anything — every paper-visible quantity must be
exactly what it was before the axis existed.  Three pins:

* the default sweep axis stays ``("none",)`` and a small reference
  sweep's JSON digest is frozen byte-for-byte;
* ``--recluster online`` with ``online_move_pages=0`` is
  counter-identical to ``--recluster none`` (triggers fire, move
  nothing, and the replay cannot tell);
* with a real page budget on a drifting trace the axis must *do*
  something — at least one counter moves — so the pins above cannot
  pass vacuously.
"""

from __future__ import annotations

import hashlib

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.workload import WorkloadSpec, compile_trace
from repro.experiments import sweep

#: Frozen before this PR's changes: the reference sweep cell's exact
#: JSON bytes.  If this moves, a default-path counter (or the JSON
#: shape) changed — exactly what the online axis must never do.
GOLDEN_SWEEP_DIGEST = (
    "4fe238d06961a004cb807b61ce2048d18b94f0edee1c4adbc792d3144bc5bf27"
)

SWEEP_CONFIG = BenchmarkConfig(n_objects=60, buffer_pages=48)

DRIFT_CONFIG = BenchmarkConfig(
    n_objects=48,
    buffer_pages=24,
    online_trigger_ops=15,
    online_move_pages=4,
)

DRIFT_SPEC = WorkloadSpec(
    name="parity-drift",
    point_weight=0.6,
    navigate_weight=0.2,
    scan_weight=0.0,
    update_weight=0.2,
    n_ops=120,
    seed=41,
    drift="step",
    drift_period=20,
    hot_fraction=0.15,
)


def test_default_recluster_axis_is_none_only():
    assert sweep.DEFAULT_RECLUSTERS == ("none",)


def test_default_sweep_json_digest_is_frozen():
    result = sweep.run_sweep(
        SWEEP_CONFIG,
        workloads=("uniform,ops=15",),
        capacities=(24,),
        policies=("lru",),
        models=("DASDBS-NSM",),
    )
    digest = hashlib.sha256(result.to_json().encode()).hexdigest()
    assert digest == GOLDEN_SWEEP_DIGEST


def _replay(config: BenchmarkConfig, mode: str):
    runner = BenchmarkRunner(config.with_changes(recluster=mode))
    trace = compile_trace(DRIFT_SPEC, config.n_objects)
    return runner.run_trace("NSM+index", trace)


def test_zero_budget_online_is_counter_identical_to_none():
    none = _replay(DRIFT_CONFIG.with_changes(online_move_pages=0), "none")
    online = _replay(DRIFT_CONFIG.with_changes(online_move_pages=0), "online")
    assert online.raw == none.raw


def test_budgeted_online_moves_at_least_one_counter():
    none = _replay(DRIFT_CONFIG, "none")
    online = _replay(DRIFT_CONFIG, "online")
    assert online.raw != none.raw
