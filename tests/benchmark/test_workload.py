"""Workload engine: spec validation, trace determinism, execution."""

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.workload import (
    OP_KINDS,
    PRESET_WORKLOADS,
    WorkloadExecutor,
    WorkloadSpec,
    compile_trace,
    parse_workload,
)
from repro.errors import BenchmarkError

#: Tiny but complete configuration for executor tests.
CFG = BenchmarkConfig(
    n_objects=40,
    buffer_pages=48,
    loops=5,
    q1a_sample=4,
    q1b_sample=1,
    q2a_sample=2,
    seed=3,
)


class TestWorkloadSpec:
    def test_defaults_valid(self):
        spec = WorkloadSpec()
        assert spec.skew == "uniform" and spec.warm

    def test_mix_covers_all_kinds(self):
        assert tuple(WorkloadSpec().mix()) == OP_KINDS

    def test_rejects_negative_weight(self):
        with pytest.raises(BenchmarkError):
            WorkloadSpec(point_weight=-1.0)

    def test_rejects_all_zero_mix(self):
        with pytest.raises(BenchmarkError):
            WorkloadSpec(
                point_weight=0, navigate_weight=0, scan_weight=0, update_weight=0
            )

    def test_rejects_unknown_skew(self):
        with pytest.raises(BenchmarkError):
            WorkloadSpec(skew="pareto")

    def test_rejects_bad_theta_and_ops(self):
        with pytest.raises(BenchmarkError):
            WorkloadSpec(skew="zipf", zipf_theta=0)
        with pytest.raises(BenchmarkError):
            WorkloadSpec(n_ops=0)

    def test_describe_mentions_the_knobs(self):
        text = WorkloadSpec(name="w", skew="zipf", zipf_theta=1.5, warm=False).describe()
        assert "w:" in text and "zipf(1.5)" in text and "cold" in text


class TestTraceCompilation:
    def test_same_spec_same_trace(self):
        spec = WorkloadSpec(n_ops=100)
        assert compile_trace(spec, 50) == compile_trace(spec, 50)

    def test_different_seed_different_trace(self):
        a = compile_trace(WorkloadSpec(n_ops=100, seed=1), 50)
        b = compile_trace(WorkloadSpec(n_ops=100, seed=2), 50)
        assert a.ops != b.ops

    def test_trace_length_and_kinds(self):
        trace = compile_trace(WorkloadSpec(n_ops=250), 50)
        assert len(trace.ops) == 250
        assert sum(trace.op_counts().values()) == 250
        assert set(trace.op_counts()) == set(OP_KINDS)

    def test_oids_within_extension(self):
        trace = compile_trace(WorkloadSpec(n_ops=300, skew="zipf"), 17)
        for op in trace.ops:
            if op.kind != "scan":
                assert 0 <= op.oid < 17
            else:
                assert op.oid == -1

    def test_zipf_skews_toward_low_oids(self):
        uniform = compile_trace(WorkloadSpec(n_ops=2000), 100)
        zipf = compile_trace(
            WorkloadSpec(n_ops=2000, skew="zipf", zipf_theta=1.2), 100
        )

        def low_oid_share(trace):
            targeted = [op for op in trace.ops if op.kind != "scan"]
            return sum(1 for op in targeted if op.oid < 10) / len(targeted)

        assert low_oid_share(zipf) > 2 * low_oid_share(uniform)

    def test_rejects_empty_extension(self):
        with pytest.raises(BenchmarkError):
            compile_trace(WorkloadSpec(), 0)


class TestParseWorkload:
    def test_presets(self):
        for name, spec in PRESET_WORKLOADS.items():
            assert parse_workload(name) == spec

    def test_zipf_with_theta(self):
        spec = parse_workload("zipf(1.0)")
        assert spec.skew == "zipf" and spec.zipf_theta == 1.0
        assert spec.name == "zipf(1)"

    def test_key_value_tokens(self):
        spec = parse_workload("zipf(1.2),point=3,update=1,ops=400,cold,seed=9")
        assert spec.skew == "zipf" and spec.zipf_theta == 1.2
        assert spec.point_weight == 3 and spec.update_weight == 1
        assert spec.n_ops == 400 and not spec.warm and spec.seed == 9

    def test_unknown_token_rejected(self):
        with pytest.raises(BenchmarkError):
            parse_workload("bogus")
        with pytest.raises(BenchmarkError):
            parse_workload("frobnicate=3")
        with pytest.raises(BenchmarkError):
            parse_workload("ops=many")

    def test_preset_after_other_tokens_rejected(self):
        """A preset replaces the whole spec, so accepting it after
        overrides would silently discard them."""
        with pytest.raises(BenchmarkError):
            parse_workload("cold,uniform")
        with pytest.raises(BenchmarkError):
            parse_workload("ops=500,read-heavy")

    def test_preset_first_then_overrides(self):
        spec = parse_workload("read-heavy,ops=500,cold")
        assert spec.point_weight == 0.7 and spec.n_ops == 500 and not spec.warm


class TestExecution:
    @pytest.fixture(scope="class")
    def runner(self):
        return BenchmarkRunner(CFG)

    SPEC = WorkloadSpec(n_ops=30, seed=7)

    def test_deterministic_across_runs(self, runner):
        first = runner.run_workload("DASDBS-NSM", self.SPEC)
        second = runner.run_workload("DASDBS-NSM", self.SPEC)
        assert first.raw == second.raw
        assert first.op_counts == second.op_counts

    @pytest.mark.parametrize("model", ["DSM", "DASDBS-DSM", "NSM", "DASDBS-NSM"])
    def test_all_measured_models_supported(self, runner, model):
        result = runner.run_workload(model, self.SPEC)
        assert result.n_ops == 30
        assert result.raw.page_fixes > 0
        assert result.raw.page_fixes == result.raw.buffer_hits + result.raw.buffer_misses
        assert 0.0 <= result.hit_rate <= 1.0

    def test_cold_regime_misses_more(self, runner):
        warm = runner.run_workload("DASDBS-NSM", self.SPEC)
        cold = runner.run_workload("DASDBS-NSM", self.SPEC.with_changes(warm=False))
        assert cold.raw.buffer_misses >= warm.raw.buffer_misses
        assert cold.hit_rate <= warm.hit_rate

    def test_update_heavy_workload_writes(self, runner):
        spec = WorkloadSpec(
            name="u",
            point_weight=0,
            navigate_weight=0,
            scan_weight=0,
            update_weight=1,
            n_ops=20,
        )
        result = runner.run_workload("DSM", spec)
        assert result.raw.pages_written > 0
        assert result.op_counts["update"] == 20

    def test_per_op_normalisation(self, runner):
        result = runner.run_workload("DASDBS-NSM", self.SPEC)
        assert result.per_op.page_fixes == pytest.approx(result.raw.page_fixes / 30)

    def test_trace_larger_than_extension_rejected(self, runner):
        model = runner.build_model("DASDBS-NSM")
        try:
            trace = compile_trace(self.SPEC, CFG.n_objects + 1)
            with pytest.raises(BenchmarkError):
                WorkloadExecutor(model, trace)
        finally:
            model.engine.close()


class TestRunnerIntegration:
    def test_adopt_extension_shares_generation(self):
        base = BenchmarkRunner(CFG)
        stations = base.stations
        other = BenchmarkRunner(CFG.with_changes(buffer_pages=16, policy="2q"))
        other.adopt_extension(stations)
        assert other.stations is stations

    def test_adopt_after_generation_rejected(self):
        runner = BenchmarkRunner(CFG)
        runner.stations
        with pytest.raises(BenchmarkError):
            runner.adopt_extension([])

    def test_shared_extension_same_results(self):
        spec = WorkloadSpec(n_ops=15, seed=5)
        solo = BenchmarkRunner(CFG).run_workload("DASDBS-NSM", spec)
        shared = BenchmarkRunner(CFG)
        shared.adopt_extension(BenchmarkRunner(CFG).stations)
        assert shared.run_workload("DASDBS-NSM", spec).raw == solo.raw
