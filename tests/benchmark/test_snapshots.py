"""Clone-vs-rebuild parity of the extension snapshot store (ISSUE 4).

The contract: a model served from the snapshot store is **bit-identical**
to a freshly rebuilt one — same page bytes, same allocation state, same
counters for every subsequent operation — for all five storage models,
and mutating a clone never contaminates the cached image or later
clones.
"""

from __future__ import annotations

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.snapshots import DEFAULT_STORE, SnapshotStore, snapshot_key
from repro.benchmark.workload import WorkloadExecutor, WorkloadSpec, compile_trace
from repro.errors import BenchmarkError

#: Every registered storage model, including the analytical-only
#: NSM+index — the snapshot store must serve all five.
ALL_MODELS = ("DSM", "DASDBS-DSM", "NSM", "NSM+index", "DASDBS-NSM")

CFG = BenchmarkConfig(
    n_objects=24,
    buffer_pages=48,
    loops=3,
    q1a_sample=3,
    q1b_sample=1,
    q2a_sample=2,
    seed=17,
)

#: A trace that reads, navigates, scans and updates.
SPEC = WorkloadSpec(name="mix", n_ops=30, seed=9)
TRACE = compile_trace(SPEC, CFG.n_objects)


def _rebuilt(model_name: str, config: BenchmarkConfig = CFG):
    return BenchmarkRunner(config.with_changes(snapshots=False)).build_model(
        model_name
    )


def _cloned(model_name: str, config: BenchmarkConfig = CFG):
    return BenchmarkRunner(config.with_changes(snapshots=True)).build_model(
        model_name
    )


def _disk_state(model):
    snap = model.engine.snapshot()
    return (snap.image, snap.allocated, snap.next_page_id)


@pytest.mark.parametrize("model_name", ALL_MODELS)
class TestCloneParity:
    def test_page_bytes_identical(self, model_name):
        rebuilt, cloned = _rebuilt(model_name), _cloned(model_name)
        try:
            assert _disk_state(cloned) == _disk_state(rebuilt)
            assert cloned.n_objects == rebuilt.n_objects
            assert cloned.relation_pages() == rebuilt.relation_pages()
        finally:
            rebuilt.engine.close()
            cloned.engine.close()

    def test_workload_counters_identical(self, model_name):
        rebuilt, cloned = _rebuilt(model_name), _cloned(model_name)
        try:
            want = WorkloadExecutor(rebuilt, TRACE).run()
            got = WorkloadExecutor(cloned, TRACE).run()
            assert got.raw == want.raw
        finally:
            rebuilt.engine.close()
            cloned.engine.close()

    def test_mutated_clone_does_not_contaminate_the_image(self, model_name):
        """Updates and deletes on a clone must never reach the cached
        snapshot: the next clone still matches a fresh rebuild."""
        first = _cloned(model_name)
        try:
            refs = first.all_refs()
            first.update_roots(refs[:3], {"Name": "mutated"})
            first.delete_object(refs[-1])
            first.engine.flush()
        finally:
            first.engine.close()
        rebuilt, second = _rebuilt(model_name), _cloned(model_name)
        try:
            assert _disk_state(second) == _disk_state(rebuilt)
            got = WorkloadExecutor(second, TRACE).run()
            want = WorkloadExecutor(rebuilt, TRACE).run()
            assert got.raw == want.raw
        finally:
            rebuilt.engine.close()
            second.engine.close()


class TestStore:
    def test_extension_is_built_once(self):
        config = CFG.with_changes(seed=7101)  # fresh key for this test
        runner = BenchmarkRunner(config)
        before = DEFAULT_STORE.builds
        runner.build_model("DSM").engine.close()
        runner.build_model("DSM").engine.close()
        BenchmarkRunner(config).build_model("DSM").engine.close()
        assert DEFAULT_STORE.builds == before + 1

    def test_key_excludes_buffer_and_backend_knobs(self):
        small = CFG.with_changes(buffer_pages=8, policy="2q", backend="file")
        assert snapshot_key(small, "DSM") == snapshot_key(CFG, "DSM")
        other_scale = CFG.with_changes(n_objects=25)
        assert snapshot_key(other_scale, "DSM") != snapshot_key(CFG, "DSM")

    def test_clone_rejects_page_size_mismatch(self):
        store = SnapshotStore()
        runner = BenchmarkRunner(CFG)
        snapshot = store.get(CFG, "DSM", lambda: runner.stations)
        with pytest.raises(BenchmarkError):
            store.clone(snapshot, CFG.with_changes(page_size=1024))

    def test_spill_and_preload_round_trip(self, tmp_path):
        store = SnapshotStore()
        runner = BenchmarkRunner(CFG)
        snapshot = store.get(CFG, "DASDBS-NSM", lambda: runner.stations)
        path = store.spill(snapshot, str(tmp_path))
        worker_store = SnapshotStore()
        worker_store.preload(path)
        loaded = worker_store.get(
            CFG, "DASDBS-NSM", lambda: pytest.fail("cache miss after preload")
        )
        assert loaded.disk == snapshot.disk
        assert loaded.model_state == snapshot.model_state
        rebuilt = _rebuilt("DASDBS-NSM")
        cloned = worker_store.clone(loaded, CFG)
        try:
            assert _disk_state(cloned) == _disk_state(rebuilt)
        finally:
            rebuilt.engine.close()
            cloned.engine.close()

    def test_eviction_only_costs_a_rebuild(self):
        store = SnapshotStore(max_snapshots=1)
        runner = BenchmarkRunner(CFG)
        store.get(CFG, "DSM", lambda: runner.stations)
        store.get(CFG, "NSM", lambda: runner.stations)  # evicts DSM
        again = store.get(CFG, "DSM", lambda: runner.stations)
        assert store.builds == 3
        rebuilt = _rebuilt("DSM")
        cloned = store.clone(again, CFG)
        try:
            assert _disk_state(cloned) == _disk_state(rebuilt)
        finally:
            rebuilt.engine.close()
            cloned.engine.close()


class TestBackendInteraction:
    def test_file_backend_clones_share_counters_with_memory(self, tmp_path):
        config = CFG.with_changes(backend="file", backend_path=str(tmp_path / "p"))
        memory_model = _cloned("DASDBS-NSM")
        file_model = _cloned("DASDBS-NSM", config)
        try:
            want = WorkloadExecutor(memory_model, TRACE).run()
            got = WorkloadExecutor(file_model, TRACE).run()
            assert got.raw == want.raw
        finally:
            memory_model.engine.close()
            file_model.engine.close()

    def test_trace_backend_bypasses_snapshots(self, tmp_path):
        """Traces must stay complete and replayable, so the runner
        rebuilds under the trace backend even with snapshots on."""
        config = CFG.with_changes(
            backend="trace", backend_path=str(tmp_path / "traces"), snapshots=True
        )
        runner = BenchmarkRunner(config)
        assert not runner.snapshots_active
        runner.run_model("DSM", ("1c",))
        trace_text = (tmp_path / "traces" / "DSM.jsonl").read_text()
        assert '"op": "restore"' not in trace_text
        assert '"op": "allocate"' in trace_text
