"""Unit and property tests for the benchmark generator and statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmark.config import BenchmarkConfig, DEFAULT_CONFIG, SKEWED_CONFIG
from repro.benchmark.generator import child_oids, generate_stations, total_connections
from repro.benchmark.schema import KEY_BASE, STATION_SCHEMA
from repro.benchmark.stats import DatabaseStatistics
from repro.errors import BenchmarkError


class TestConfig:
    def test_default_matches_paper(self):
        assert DEFAULT_CONFIG.n_objects == 1500
        assert DEFAULT_CONFIG.fanout == 2
        assert DEFAULT_CONFIG.probability == 0.8
        assert DEFAULT_CONFIG.max_sightseeing == 15
        assert DEFAULT_CONFIG.buffer_pages == 1200

    def test_loops_default_is_fifth_of_size(self):
        assert DEFAULT_CONFIG.effective_loops == 300
        assert DEFAULT_CONFIG.with_changes(n_objects=100).effective_loops == 20

    def test_explicit_loops(self):
        assert DEFAULT_CONFIG.with_changes(loops=42).effective_loops == 42

    def test_expected_children_formula(self):
        """(fanout·p)³ = 4.096 for the default and the skew setting."""
        assert DEFAULT_CONFIG.expected_children == pytest.approx(4.096)
        assert SKEWED_CONFIG.expected_children == pytest.approx(4.096)

    def test_expected_platforms(self):
        assert DEFAULT_CONFIG.expected_platforms == pytest.approx(1.6)
        assert SKEWED_CONFIG.expected_platforms == pytest.approx(1.6)

    def test_invalid_configs_rejected(self):
        with pytest.raises(BenchmarkError):
            BenchmarkConfig(n_objects=0)
        with pytest.raises(BenchmarkError):
            BenchmarkConfig(probability=1.5)
        with pytest.raises(BenchmarkError):
            BenchmarkConfig(fanout=-1)
        with pytest.raises(BenchmarkError):
            BenchmarkConfig(max_sightseeing=-1)
        with pytest.raises(BenchmarkError):
            BenchmarkConfig(loops=0)


class TestGeneration:
    def test_deterministic_in_seed(self):
        cfg = BenchmarkConfig(n_objects=20, seed=3)
        assert generate_stations(cfg) == generate_stations(cfg)

    def test_different_seeds_differ(self):
        a = generate_stations(BenchmarkConfig(n_objects=20, seed=1))
        b = generate_stations(BenchmarkConfig(n_objects=20, seed=2))
        assert a != b

    def test_object_count(self):
        assert len(generate_stations(BenchmarkConfig(n_objects=17))) == 17

    def test_keys_are_oid_based(self):
        stations = generate_stations(BenchmarkConfig(n_objects=5))
        assert [s["Key"] for s in stations] == [KEY_BASE + i for i in range(5)]

    def test_schema_conformance(self):
        for station in generate_stations(BenchmarkConfig(n_objects=10)):
            assert station.schema is STATION_SCHEMA
            assert station["NoPlatform"] == len(station.subtuples("Platform"))
            assert station["NoSeeing"] == len(station.subtuples("Sightseeing"))

    def test_bounds_respected(self):
        cfg = BenchmarkConfig(n_objects=200, seed=11)
        stats = DatabaseStatistics.from_stations(generate_stations(cfg))
        assert stats.max_platforms <= cfg.fanout
        assert stats.max_connections <= cfg.fanout**3  # fanout platforms × fanout² conns
        assert stats.max_sightseeings <= cfg.max_sightseeing

    def test_references_in_range(self):
        cfg = BenchmarkConfig(n_objects=50, seed=13)
        for station in generate_stations(cfg):
            for oid in child_oids(station):
                assert 0 <= oid < cfg.n_objects

    def test_key_and_oid_references_consistent(self):
        cfg = BenchmarkConfig(n_objects=30, seed=17)
        for station in generate_stations(cfg):
            for platform in station.subtuples("Platform"):
                for conn in platform.subtuples("Connection"):
                    assert conn["KeyConnection"] == KEY_BASE + conn["OidConnection"]

    def test_averages_near_paper_values(self):
        """Section 5.1: 1.59 platforms, 4.04 connections, 7.64 sights."""
        stats = DatabaseStatistics.from_stations(generate_stations(DEFAULT_CONFIG))
        assert stats.avg_platforms == pytest.approx(1.6, abs=0.1)
        assert stats.avg_connections == pytest.approx(4.096, abs=0.35)
        assert stats.avg_sightseeings == pytest.approx(7.5, abs=0.5)

    def test_skew_preserves_means_raises_maxima(self):
        """Section 5.5: similar averages, larger maxima under skew."""
        cfg = SKEWED_CONFIG.with_changes(n_objects=800)
        base = DatabaseStatistics.from_stations(
            generate_stations(DEFAULT_CONFIG.with_changes(n_objects=800))
        )
        skew = DatabaseStatistics.from_stations(generate_stations(cfg))
        assert skew.avg_connections == pytest.approx(base.avg_connections, rel=0.25)
        assert skew.max_connections > base.max_connections

    def test_zero_probability_no_children(self):
        cfg = BenchmarkConfig(n_objects=10, probability=0.0)
        assert total_connections(generate_stations(cfg)) == 0

    def test_full_probability_max_children(self):
        cfg = BenchmarkConfig(n_objects=10, probability=1.0)
        stations = generate_stations(cfg)
        assert total_connections(stations) == 10 * cfg.fanout**3


class TestStatistics:
    def test_totals_consistent(self):
        stations = generate_stations(BenchmarkConfig(n_objects=40, seed=23))
        stats = DatabaseStatistics.from_stations(stations)
        assert stats.total_connections == total_connections(stations)
        assert stats.avg_children == stats.avg_connections
        assert stats.avg_grandchildren == pytest.approx(stats.avg_connections**2)

    def test_avg_object_size_positive(self):
        from repro.nf2.serializer import DASDBS_FORMAT

        stations = generate_stations(BenchmarkConfig(n_objects=10))
        stats = DatabaseStatistics.from_stations(stations)
        size = stats.avg_object_size(DASDBS_FORMAT, stations)
        assert size > 500


@given(
    n=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
    prob=st.floats(min_value=0.0, max_value=1.0),
    fanout=st.integers(min_value=0, max_value=4),
    max_sight=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_property_generator_always_valid(n, seed, prob, fanout, max_sight):
    """Any configuration yields schema-conform, in-range extensions."""
    cfg = BenchmarkConfig(
        n_objects=n, seed=seed, probability=prob, fanout=fanout, max_sightseeing=max_sight
    )
    stations = generate_stations(cfg)
    assert len(stations) == n
    for station in stations:
        assert len(station.subtuples("Platform")) <= fanout
        assert len(station.subtuples("Sightseeing")) <= max_sight
        for oid in child_oids(station):
            assert 0 <= oid < n
