"""Unit tests for the benchmark queries and runner."""

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.queries import QUERY_NAMES, QuerySuite
from repro.benchmark.runner import BenchmarkRunner
from tests.conftest import build_loaded_model

CFG = BenchmarkConfig(
    n_objects=40, loops=8, q1a_sample=8, q1b_sample=2, q2a_sample=4, buffer_pages=300, seed=21
)


@pytest.fixture(scope="module")
def runner():
    return BenchmarkRunner(CFG)


@pytest.fixture(scope="module")
def dsm_results(runner):
    return runner.run_model("DSM")


class TestQueryResults:
    def test_all_queries_present(self, dsm_results):
        assert set(dsm_results.results) == set(QUERY_NAMES)

    def test_normalisation_divisors(self, runner):
        model = build_loaded_model("DSM", runner.stations, buffer_pages=300)
        suite = QuerySuite(model, CFG)
        assert suite.q1c().divisor == CFG.n_objects
        assert suite.q2b().divisor == CFG.effective_loops
        assert suite.q2a().divisor == CFG.q2a_sample

    def test_query1a_reads_no_writes(self, dsm_results):
        raw = dsm_results.results["1a"].raw
        assert raw.pages_read > 0
        assert raw.pages_written == 0

    def test_query3_writes(self, dsm_results):
        assert dsm_results.results["3b"].raw.pages_written > 0

    def test_query2_extras_track_grandchildren(self, dsm_results):
        extras = dsm_results.results["2b"].extras
        assert extras["loops"] == CFG.effective_loops
        assert extras["grandchildren"] > 0

    def test_query3a_not_cheaper_than_2a(self, dsm_results):
        q2 = dsm_results.results["2a"].normalized.io_pages
        q3 = dsm_results.results["3a"].normalized.io_pages
        assert q3 >= q2

    def test_unsupported_query_returns_none(self, runner):
        nsm_run = runner.run_model("NSM", queries=("1a", "1c"))
        assert nsm_run.results["1a"] is None
        assert nsm_run.results["1c"] is not None

    def test_metric_accessor(self, dsm_results):
        assert dsm_results.metric("1c", "io_pages") > 0
        assert dsm_results.metric("1c", "page_fixes") > 0

    def test_same_access_pattern_across_models(self, runner):
        """Every model must see the identical root sequence (extras match)."""
        a = runner.run_model("DSM", queries=("2b",))
        b = runner.run_model("DASDBS-NSM", queries=("2b",))
        assert (
            a.results["2b"].extras["grandchildren"]
            == b.results["2b"].extras["grandchildren"]
        )

    def test_queries_leave_no_fixed_pages(self, runner):
        model = build_loaded_model("DASDBS-NSM", runner.stations, buffer_pages=300)
        suite = QuerySuite(model, CFG)
        suite.run_all()
        assert model.engine.buffer.fixed_pages() == []


class TestRunner:
    def test_stations_generated_once(self, runner):
        assert runner.stations is runner.stations

    def test_statistics_consistent(self, runner):
        stats = runner.statistics()
        assert stats.n_objects == CFG.n_objects

    def test_run_models_covers_requested(self, runner):
        runs = runner.run_models(("DSM", "NSM"), queries=("1c",))
        assert set(runs) == {"DSM", "NSM"}

    def test_relation_pages_recorded(self, dsm_results):
        assert dsm_results.total_pages > 0


class TestBufferRegimes:
    def test_warm_2b_cheaper_than_cold_2a(self, runner):
        """With a buffer larger than the DB, loops amortise to near zero."""
        cfg = CFG.with_changes(buffer_pages=1200)
        run = BenchmarkRunner(cfg).run_model("DSM", queries=("2a", "2b"))
        assert run.metric("2b", "pages_read") < run.metric("2a", "pages_read")

    def test_small_buffer_causes_evictions(self):
        cfg = CFG.with_changes(buffer_pages=24)
        run = BenchmarkRunner(cfg).run_model("DSM", queries=("2b",))
        assert run.results["2b"].raw.evictions > 0

    def test_cache_overflow_raises_cost(self):
        """Figure 6's mechanism: shrinking the buffer raises 2b cost."""
        big = BenchmarkRunner(CFG.with_changes(buffer_pages=1200)).run_model(
            "DSM", queries=("2b",)
        )
        small = BenchmarkRunner(CFG.with_changes(buffer_pages=24)).run_model(
            "DSM", queries=("2b",)
        )
        assert small.metric("2b", "io_pages") > big.metric("2b", "io_pages")
