"""Reclustered-extension parity (ISSUE 5, satellite 3).

The contract extends the clone-vs-rebuild parity of ISSUE 4 to
trace-reclustered extensions: a model served from the snapshot store's
reclustered cache must be **bit-identical** — same page image, same
allocation state, same counters for every subsequent operation — to a
freshly rebuilt model that was trained and reorganised inline.  And the
sweep must produce byte-identical JSON whether its cells run
sequentially, in a thread pool, or in a process pool (where workers map
spilled reclustered artifacts instead of retraining).
"""

from __future__ import annotations

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.snapshots import DEFAULT_STORE, SnapshotStore
from repro.benchmark.workload import WorkloadExecutor, WorkloadSpec, compile_trace
from repro.experiments import sweep

#: Models whose placement is actually access-path sensitive plus one
#: whose heap is only a small-object side car — the parity must hold
#: for both kinds.
MODELS = ("DSM", "NSM", "NSM+index", "DASDBS-NSM")

CFG = BenchmarkConfig(
    n_objects=24,
    buffer_pages=48,
    loops=3,
    q1a_sample=3,
    q1b_sample=1,
    q2a_sample=2,
    seed=17,
)

SPEC = WorkloadSpec(
    name="train",
    point_weight=0.3,
    navigate_weight=0.5,
    scan_weight=0.0,
    update_weight=0.2,
    skew="zipf",
    zipf_theta=1.1,
    n_ops=40,
    seed=9,
)
TRACE = compile_trace(SPEC, CFG.n_objects)


def _inline_reclustered(model_name: str, policy: str):
    """Rebuild from scratch, then train + recluster in place."""
    runner = BenchmarkRunner(CFG.with_changes(snapshots=False, recluster=policy))
    return runner.build_model_for_trace(model_name, TRACE)


def _cloned_reclustered(model_name: str, policy: str):
    """Serve from the snapshot store's reclustered cache."""
    runner = BenchmarkRunner(CFG.with_changes(snapshots=True, recluster=policy))
    return runner.build_model_for_trace(model_name, TRACE)


def _disk_state(model):
    snap = model.engine.snapshot()
    return (snap.image, snap.allocated, snap.next_page_id)


@pytest.mark.parametrize("policy", ["affinity", "hotcold"])
@pytest.mark.parametrize("model_name", MODELS)
class TestRecusteredCloneParity:
    def test_page_bytes_identical(self, model_name, policy):
        inline, cloned = (
            _inline_reclustered(model_name, policy),
            _cloned_reclustered(model_name, policy),
        )
        try:
            assert _disk_state(cloned) == _disk_state(inline)
            assert cloned.n_objects == inline.n_objects
            assert cloned.relation_pages() == inline.relation_pages()
        finally:
            inline.engine.close()
            cloned.engine.close()

    def test_measured_counters_identical(self, model_name, policy):
        inline, cloned = (
            _inline_reclustered(model_name, policy),
            _cloned_reclustered(model_name, policy),
        )
        try:
            want = WorkloadExecutor(inline, TRACE).run()
            got = WorkloadExecutor(cloned, TRACE).run()
            assert got.raw == want.raw
        finally:
            inline.engine.close()
            cloned.engine.close()

    def test_mutated_clone_does_not_contaminate_the_cache(self, model_name, policy):
        first = _cloned_reclustered(model_name, policy)
        try:
            refs = first.all_refs()
            first.update_roots(refs[:3], {"Name": "mutated"})
            first.engine.flush()
        finally:
            first.engine.close()
        inline, second = (
            _inline_reclustered(model_name, policy),
            _cloned_reclustered(model_name, policy),
        )
        try:
            assert _disk_state(second) == _disk_state(inline)
        finally:
            inline.engine.close()
            second.engine.close()


class TestRecusteredStore:
    def test_training_happens_once_per_key(self):
        config = CFG.with_changes(seed=8101)  # fresh key for this test
        runner = BenchmarkRunner(config.with_changes(recluster="affinity"))
        before = DEFAULT_STORE.builds
        runner.build_model_for_trace("DASDBS-NSM", TRACE).engine.close()
        runner.build_model_for_trace("DASDBS-NSM", TRACE).engine.close()
        # One base build + one reclustered build, then cache hits only.
        assert DEFAULT_STORE.builds == before + 2

    def test_key_separates_policies_and_traces(self):
        store = SnapshotStore()
        runner = BenchmarkRunner(CFG)
        affinity = store.get_reclustered(
            CFG, "DASDBS-NSM", lambda: runner.stations, runner.fmt, TRACE, "affinity"
        )
        hotcold = store.get_reclustered(
            CFG, "DASDBS-NSM", lambda: runner.stations, runner.fmt, TRACE, "hotcold"
        )
        assert affinity.key != hotcold.key
        other_trace = compile_trace(SPEC.with_changes(seed=10), CFG.n_objects)
        other = store.get_reclustered(
            CFG, "DASDBS-NSM", lambda: runner.stations, runner.fmt, other_trace, "affinity"
        )
        assert other.key != affinity.key

    def test_spilled_reclustered_artifact_round_trips(self, tmp_path):
        store = SnapshotStore()
        runner = BenchmarkRunner(CFG)
        snapshot = store.get_reclustered(
            CFG, "NSM+index", lambda: runner.stations, runner.fmt, TRACE, "affinity"
        )
        path = store.spill(snapshot, str(tmp_path), stem="artifact-0")
        worker_store = SnapshotStore()
        worker_store.preload(path)
        loaded = worker_store.get_reclustered(
            CFG,
            "NSM+index",
            lambda: pytest.fail("cache miss after preload"),
            runner.fmt,
            TRACE,
            "affinity",
        )
        assert loaded.disk == snapshot.disk
        assert loaded.model_state == snapshot.model_state


#: A tiny but fully crossed grid for the execution-path parity checks.
GRID = dict(
    workloads=(SPEC,),
    capacities=(24,),
    policies=("lru",),
    models=("NSM+index", "DASDBS-NSM"),
    reclusters=("none", "affinity"),
)


class TestSweepPathParity:
    def test_thread_and_sequential_paths_agree(self):
        sequential = sweep.run_sweep(CFG, jobs=1, **GRID)
        threaded = sweep.run_sweep(CFG, jobs=4, **GRID)
        assert sequential.to_json() == threaded.to_json()

    def test_process_path_agrees(self):
        sequential = sweep.run_sweep(CFG, jobs=1, **GRID)
        processed = sweep.run_sweep(CFG, processes=2, **GRID)
        assert sequential.to_json() == processed.to_json()

    def test_snapshots_off_path_agrees(self):
        cached = sweep.run_sweep(CFG, **GRID)
        rebuilt = sweep.run_sweep(CFG.with_changes(snapshots=False), **GRID)
        assert cached.to_json() == rebuilt.to_json()

    def test_reclustered_cells_differ_from_baseline(self):
        """The axis must do something: at least one counter moves."""
        result = sweep.run_sweep(CFG, **GRID)
        by_key = {
            (cell.model, cell.recluster): cell.result.raw for cell in result.cells
        }
        assert any(
            by_key[(model, "none")] != by_key[(model, "affinity")]
            for model in GRID["models"]
        )
