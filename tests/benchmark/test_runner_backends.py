"""Backend parity and parallel-runner tests (ISSUE 1 acceptance).

The same benchmark must produce identical metrics no matter which disk
backend holds the bytes, and no matter how many worker threads run the
independent models.
"""

from __future__ import annotations

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.runner import BenchmarkRunner
from repro.errors import BenchmarkError

#: Small but complete: all four measured models, all seven queries.
CFG = BenchmarkConfig(
    n_objects=40,
    buffer_pages=60,
    loops=8,
    q1a_sample=5,
    q1b_sample=1,
    q2a_sample=3,
    seed=11,
)

MODELS = ("DSM", "DASDBS-DSM", "NSM", "DASDBS-NSM")
QUERIES = ("1b", "1c", "2a", "2b", "3b")


def run_with(config: BenchmarkConfig):
    return BenchmarkRunner(config).run_models(MODELS, QUERIES)


def raw_snapshots(runs):
    """(model, query) -> raw MetricsSnapshot (None when unsupported)."""
    return {
        (model, query): (result.raw if result is not None else None)
        for model, run in runs.items()
        for query, result in run.results.items()
    }


class TestBackendParity:
    def test_memory_vs_file_identical_counters(self, tmp_path):
        """io_calls, io_pages and fixes must match snapshot-for-snapshot."""
        memory = run_with(CFG.with_changes(backend="memory"))
        file = run_with(
            CFG.with_changes(backend="file", backend_path=str(tmp_path / "pages"))
        )
        assert raw_snapshots(memory) == raw_snapshots(file)

    def test_memory_vs_trace_identical_counters(self, tmp_path):
        memory = run_with(CFG.with_changes(backend="memory"))
        trace = run_with(
            CFG.with_changes(backend="trace", backend_path=str(tmp_path / "traces"))
        )
        assert raw_snapshots(memory) == raw_snapshots(trace)

    def test_trace_files_written_per_model(self, tmp_path):
        root = tmp_path / "traces"
        run_with(CFG.with_changes(backend="trace", backend_path=str(root)))
        written = sorted(p.name for p in root.iterdir())
        assert written == sorted(f"{model}.jsonl" for model in MODELS)
        assert all((root / name).stat().st_size > 0 for name in written)

    def test_repeat_runs_do_not_clobber_trace_files(self, tmp_path):
        """Several experiments into one directory keep every trace."""
        root = tmp_path / "traces"
        config = CFG.with_changes(backend="trace", backend_path=str(root))
        BenchmarkRunner(config).run_model("DSM", ("1c",))
        BenchmarkRunner(config).run_model("DSM", ("1c",))
        assert sorted(p.name for p in root.iterdir()) == [
            "DSM-2.jsonl",
            "DSM.jsonl",
        ]

    def test_memory_backend_ignores_backend_path(self, tmp_path):
        """No decoy .pages files for the pathless memory backend."""
        root = tmp_path / "unused"
        config = CFG.with_changes(backend="memory", backend_path=str(root))
        BenchmarkRunner(config).run_model("DSM", ("1c",))
        assert not root.exists()

    def test_backend_path_must_be_directory(self, tmp_path):
        collide = tmp_path / "not-a-dir"
        collide.write_text("")
        config = CFG.with_changes(backend="file", backend_path=str(collide))
        with pytest.raises(BenchmarkError):
            BenchmarkRunner(config).run_model("DSM", ("1c",))

    def test_unknown_backend_rejected(self):
        with pytest.raises(BenchmarkError):
            CFG.with_changes(backend="tape")


class TestParallelRunner:
    def test_jobs_do_not_change_results(self):
        sequential = run_with(CFG.with_changes(jobs=1))
        parallel = run_with(CFG.with_changes(jobs=4))
        assert raw_snapshots(sequential) == raw_snapshots(parallel)
        assert {m: r.relation_pages for m, r in sequential.items()} == {
            m: r.relation_pages for m, r in parallel.items()
        }

    def test_result_order_follows_names(self):
        runs = BenchmarkRunner(CFG.with_changes(jobs=3)).run_models(MODELS, ("1c",))
        assert tuple(runs) == MODELS

    def test_explicit_jobs_overrides_config(self):
        runner = BenchmarkRunner(CFG)
        runs = runner.run_models(MODELS, ("1c",), jobs=2)
        assert tuple(runs) == MODELS

    def test_jobs_with_file_backend(self, tmp_path):
        """Concurrency plus real file I/O: distinct backing files per model."""
        memory = run_with(CFG.with_changes(jobs=1))
        parallel_file = run_with(
            CFG.with_changes(
                backend="file", backend_path=str(tmp_path / "pages"), jobs=4
            )
        )
        assert raw_snapshots(memory) == raw_snapshots(parallel_file)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(BenchmarkError):
            CFG.with_changes(jobs=0)
