"""Properties of the DOEF-style drift axes of the workload compiler.

Three contracts:

* **Determinism** — a drifting spec compiles to the same trace every
  time; the schedule is part of the trace, not of execution.
* **Schedule membership** — every targeted operation's OID lies inside
  the hot window :func:`hot_window` declares for its index, *through*
  the seeded :func:`drift_permutation` (windows are scattered object
  sets, not OID ranges).
* **Byte-compatibility** — specs without drift compile byte-for-byte
  identically to the traces this repo produced before the drift axes
  existed, pinned here as digests over the op stream.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.benchmark.workload import (
    WorkloadSpec,
    compile_trace,
    drift_permutation,
    hot_window,
)
from repro.errors import BenchmarkError


def _trace_digest(spec: WorkloadSpec, n_objects: int) -> str:
    trace = compile_trace(spec, n_objects)
    text = ";".join(f"{op.kind}:{op.oid}" for op in trace.ops)
    return hashlib.sha256(text.encode()).hexdigest()


DRIFT_SPECS = [
    WorkloadSpec(
        name=f"drift-{kind}",
        point_weight=0.5,
        navigate_weight=0.2,
        scan_weight=0.05,
        update_weight=0.25,
        n_ops=200,
        seed=seed,
        drift=kind,
        drift_period=25,
        hot_fraction=0.1,
    )
    for kind in ("step", "rotate", "expand")
    for seed in (3, 2026)
]


class TestDriftDeterminism:
    @pytest.mark.parametrize("spec", DRIFT_SPECS, ids=lambda s: f"{s.drift}-{s.seed}")
    def test_compile_is_reproducible(self, spec):
        first = compile_trace(spec, 90)
        second = compile_trace(spec, 90)
        assert first.ops == second.ops

    def test_seed_changes_the_trace(self):
        spec = DRIFT_SPECS[0]
        other = spec.with_changes(seed=spec.seed + 1)
        assert compile_trace(spec, 90).ops != compile_trace(other, 90).ops

    def test_permutation_is_seeded_and_complete(self):
        spec = DRIFT_SPECS[0]
        perm = drift_permutation(spec, 90)
        assert sorted(perm) == list(range(90))
        assert perm == drift_permutation(spec, 90)
        assert perm != drift_permutation(spec.with_changes(seed=99), 90)


class TestScheduleMembership:
    @pytest.mark.parametrize("spec", DRIFT_SPECS, ids=lambda s: f"{s.drift}-{s.seed}")
    def test_targeted_ops_stay_inside_their_window(self, spec):
        n_objects = 90
        trace = compile_trace(spec, n_objects)
        perm = drift_permutation(spec, n_objects)
        for index, op in enumerate(trace.ops):
            if op.kind == "scan":
                continue
            start, size = hot_window(spec, n_objects, index)
            members = {
                perm[(start + rank) % n_objects] for rank in range(size)
            }
            assert op.oid in members, (
                f"op {index} ({op.kind}) targets {op.oid}, outside the "
                f"{spec.drift} window at {start}+{size}"
            )

    def test_expand_window_eventually_covers_everything(self):
        spec = DRIFT_SPECS[-1].with_changes(n_ops=600)
        start, size = hot_window(spec, 90, spec.n_ops - 1)
        assert (start, size) == (0, 90)

    def test_static_window_is_the_whole_extension(self):
        assert hot_window(WorkloadSpec(), 90, 0) == (0, 90)


class TestSpecValidation:
    def test_unknown_drift_rejected(self):
        with pytest.raises(BenchmarkError):
            WorkloadSpec(drift="wander")

    def test_bad_period_and_fraction_rejected(self):
        with pytest.raises(BenchmarkError):
            WorkloadSpec(drift="step", drift_period=0)
        with pytest.raises(BenchmarkError):
            WorkloadSpec(drift="step", hot_fraction=0.0)
        with pytest.raises(BenchmarkError):
            WorkloadSpec(drift="step", hot_fraction=1.5)


class TestPreDriftByteCompatibility:
    """Static specs must compile exactly as before the drift axes."""

    GOLDEN = [
        (
            WorkloadSpec(),
            120,
            "4eb19a80b1966cf6b2e2f12cdbd6410f7d0d58b19f0f4c52c61f58d3c11fc9b7",
        ),
        (
            WorkloadSpec(name="zipf(1)", skew="zipf", zipf_theta=1.0),
            120,
            "23f50485d81a1f115f580661d5565fbe1de684037c26b302c351d9ab95b0adf4",
        ),
        (
            WorkloadSpec(
                name="nav",
                point_weight=0.3,
                navigate_weight=0.55,
                scan_weight=0.0,
                update_weight=0.15,
                n_ops=240,
                seed=2026,
                skew="zipf",
                zipf_theta=1.4,
            ),
            300,
            "87a33334b5e77b542499586dac499db45e7fcb9301db5ec0f339d8e958b98bd5",
        ),
        (
            WorkloadSpec(name="uni77", seed=77, n_ops=64),
            60,
            "b224eef5a8e7201535de1b191954b930bdb15a56fed0e4937a38bf9fc5355dc6",
        ),
    ]

    @pytest.mark.parametrize(
        "spec, n_objects, digest", GOLDEN, ids=lambda v: v if isinstance(v, str) else None
    )
    def test_golden_digest(self, spec, n_objects, digest):
        assert _trace_digest(spec, n_objects) == digest

    def test_drifting_spec_actually_changes_the_trace(self):
        spec = WorkloadSpec(name="uni77", seed=77, n_ops=64)
        drifted = spec.with_changes(drift="step", drift_period=8, hot_fraction=0.1)
        assert _trace_digest(spec, 60) != _trace_digest(drifted, 60)
