"""Shared helpers of the fuzz layer: seed selection and reporting.

Every fuzz test is **seeded and deterministic**: the default seed set
below always runs, and ``REPRO_FUZZ_SEEDS=7,8,9`` extends it without a
code change (CI can rotate seeds; a laptop can grind thousands).  A
failure names its seed in the test id — reproduce it with e.g.::

    PYTHONPATH=src python -m pytest "tests/fuzz/test_page_fuzz.py::test_slotted_page_shadow_model[1993]"

and the failing operation sequence replays exactly.
"""

from __future__ import annotations

import os

#: Seeds every run exercises.  Chosen arbitrarily but fixed: the suite
#: must behave identically on every machine.
DEFAULT_SEEDS = (1, 7, 93, 1993, 20260)


def fuzz_seeds() -> list[int]:
    """Default seeds plus any supplied via ``REPRO_FUZZ_SEEDS``."""
    extra = [
        int(token)
        for token in os.environ.get("REPRO_FUZZ_SEEDS", "").split(",")
        if token.strip()
    ]
    return list(DEFAULT_SEEDS) + extra


def pytest_generate_tests(metafunc):
    """Parametrize every test that asks for ``fuzz_seed``.

    The seed lands in the test id (``...[1993]``), which is all a
    reproduction needs — see the module docstring.
    """
    if "fuzz_seed" in metafunc.fixturenames:
        metafunc.parametrize("fuzz_seed", fuzz_seeds())
