"""Slotted-page fuzz: random operation sequences vs a dict shadow model.

The :class:`~repro.storage.page.SlottedPage` implementation is the
hottest byte-twiddling code in the repository (cached header ints,
one-pass directory decode, in-place relocation).  This suite drives a
page through long random insert/update/delete/compact sequences and
checks it after **every** step against the obvious shadow model — a
``dict`` of ``slot -> bytes`` — including across view reopens (a fresh
:class:`SlottedPage` over the same buffer must agree, proving the
header bytes persist everything the cache knows).

Seeds are fixed (see ``conftest``); a failing test id names the seed
that reproduces the exact sequence.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import InvalidAddressError, PageOverflowError
from repro.storage.constants import PAGE_SIZE
from repro.storage.page import SlottedPage

#: Sentinel marking a deleted slot in the shadow model.
DELETED = None


def _check_against_shadow(page: SlottedPage, shadow: dict[int, bytes | None]) -> None:
    """Every observable of the page must match the shadow model."""
    live = {slot: record for slot, record in shadow.items() if record is not DELETED}
    assert page.n_slots == len(shadow)
    assert page.live_records == len(live)
    assert page.used_bytes == sum(len(record) for record in live.values())
    assert page.free_space >= 0
    # records() returns live records in slot order.
    assert page.records() == sorted(live.items())
    # Point reads agree, including the zero-copy path; deleted slots raise.
    for slot, record in shadow.items():
        if record is DELETED:
            with pytest.raises(InvalidAddressError):
                page.read(slot)
            with pytest.raises(InvalidAddressError):
                page.read_view(slot)
        else:
            assert page.read(slot) == record
            assert bytes(page.read_view(slot)) == record
    # Out-of-range slots raise rather than misread.
    with pytest.raises(InvalidAddressError):
        page.read(len(shadow))


def _random_record(rng: random.Random) -> bytes:
    size = rng.choice((0, 1, rng.randint(2, 40), rng.randint(41, 400)))
    return rng.randbytes(size)


def test_slotted_page_shadow_model(fuzz_seed):
    rng = random.Random(fuzz_seed)
    data = bytearray(PAGE_SIZE)
    page = SlottedPage(data)
    shadow: dict[int, bytes | None] = {}

    for step in range(400):
        action = rng.random()
        live_slots = [s for s, r in shadow.items() if r is not DELETED]
        if action < 0.45 or not live_slots:
            record = _random_record(rng)
            # A record needs its bytes at the front plus a 4-byte slot
            # entry at the back of the front-to-back gap.
            gap = PAGE_SIZE - page.n_slots * 4 - page._free_start
            if len(record) + 4 > gap:
                with pytest.raises(PageOverflowError):
                    page.insert(record)
            else:
                slot = page.insert(record)
                assert slot == len(shadow), "slot numbers must be monotonic"
                shadow[slot] = record
        elif action < 0.70:
            slot = rng.choice(live_slots)
            record = _random_record(rng)
            old = shadow[slot]
            grows = len(record) > len(old)
            # An oversized growth may fail after an internal compaction;
            # the page must then still hold the *old* contents.
            try:
                page.update(slot, record)
            except PageOverflowError:
                assert grows
            else:
                shadow[slot] = record
        elif action < 0.85:
            slot = rng.choice(live_slots)
            page.delete(slot)
            shadow[slot] = DELETED
            with pytest.raises(InvalidAddressError):
                page.delete(slot)  # double delete is rejected
        else:
            page.compact()

        _check_against_shadow(page, shadow)
        if step % 25 == 0:
            # Reopen: a fresh view over the same bytes must agree — the
            # header cache may never know more than the header bytes.
            page = SlottedPage(data)
            _check_against_shadow(page, shadow)


def test_bytes_round_trip_preserves_contents(fuzz_seed):
    """A byte-for-byte copy of the buffer opens to an equal page."""
    rng = random.Random(fuzz_seed ^ 0xC0FFEE)
    data = bytearray(PAGE_SIZE)
    page = SlottedPage(data)
    shadow: dict[int, bytes | None] = {}
    for _ in range(60):
        record = rng.randbytes(rng.randint(0, 120))
        if len(record) <= page.free_space:
            shadow[page.insert(record)] = record
    for slot in list(shadow):
        if rng.random() < 0.3:
            page.delete(slot)
            shadow[slot] = DELETED

    copied = SlottedPage(bytearray(bytes(data)))
    _check_against_shadow(copied, shadow)


def test_compaction_reclaims_all_dead_space(fuzz_seed):
    """After deleting everything, compact restores an empty record area."""
    rng = random.Random(fuzz_seed + 17)
    page = SlottedPage(bytearray(PAGE_SIZE))
    slots = []
    for _ in range(30):
        record = rng.randbytes(rng.randint(1, 50))
        if len(record) <= page.free_space:
            slots.append(page.insert(record))
    for slot in slots:
        page.delete(slot)
    page.compact()
    assert page.live_records == 0
    assert page.used_bytes == 0
    # Dead slot entries still occupy directory space, nothing more.
    assert page.free_space == (
        SlottedPage.max_record_size(PAGE_SIZE) - len(slots) * 4
    )
