"""Session-interleaving fuzzer: K sessions vs a single-session shadow.

A seeded generator drives K sessions through random fix / unfix / read
/ update traffic against **one** shared buffer (small enough to force
eviction pressure), checking after every step that no frame a session
holds fixed gets evicted.  Updates write unique tokens, mirrored into a
shadow byte model, so a lost update — one session's write vanishing
under another's traffic — is caught byte-for-byte at the end.

Then the entire interleaved operation sequence replays flat on a fresh
disk through the plain single-session ``fix``/``unfix`` API: the latch
ledger is pure bookkeeping, so the multi-session run and its shadow
replay must agree on every metric counter and on the final disk bytes.

Seeds follow the layer convention: the fixed default set always runs,
``REPRO_FUZZ_SEEDS=...`` extends it (see ``conftest.py``).
"""

import random

from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk

PAGE_SIZE = 128
N_PAGES = 24
CAPACITY = 8
SESSIONS = 3
STEPS = 400


def build(seed):
    """A disk with deterministic initial page contents, plus its buffer."""
    disk = SimulatedDisk(page_size=PAGE_SIZE)
    rng = random.Random(seed * 31 + 17)
    pages = []
    for _ in range(N_PAGES):
        pid = disk.allocate()
        disk.write_page(pid, bytes(rng.randrange(256) for _ in range(PAGE_SIZE)))
        pages.append(pid)
    disk.metrics.reset()
    return disk, BufferManager(disk, capacity=CAPACITY), pages


def test_session_interleaving_against_shadow_replay(fuzz_seed):
    rng = random.Random(fuzz_seed)
    disk, buf, pages = build(fuzz_seed)
    buf.enable_latching()

    # Shadow state: what every page must hold at the end, and the flat
    # operation log the single-session replay re-executes.
    expected = {pid: bytearray(disk.read_page(pid)) for pid in pages}
    disk.metrics.reset()
    held = {sid: {} for sid in range(SESSIONS)}  # session -> {pid: count}
    log = []
    token = 0

    def pinned_pages():
        return {pid for counts in held.values() for pid in counts}

    for _ in range(STEPS):
        sid = rng.randrange(SESSIONS)
        mine = held[sid]
        # Keep fix-heavy traffic from pinning the whole tiny buffer.
        can_fix = len(pinned_pages()) < CAPACITY - 1
        choices = ["fix", "read", "update"] if can_fix else []
        if mine:
            choices += ["unfix", "unfix"]
        if not choices:
            continue
        op = rng.choice(choices)
        if op == "fix":
            pid = rng.choice(pages)
            buf.session_fix(pid, sid)
            mine[pid] = mine.get(pid, 0) + 1
            log.append(("fix", pid))
        elif op == "unfix":
            pid = rng.choice(list(mine))
            buf.session_unfix(pid, sid)
            log.append(("unfix", pid, False))
            if mine[pid] == 1:
                del mine[pid]
            else:
                mine[pid] -= 1
        elif op == "read":
            pid = rng.choice(pages)
            data = buf.session_fix(pid, sid)
            # A resident page must always show the shadow-model bytes:
            # any divergence here is a lost or phantom update.
            assert bytes(data) == bytes(expected[pid]), f"page {pid} diverged"
            buf.session_unfix(pid, sid)
            log.append(("fix", pid))
            log.append(("unfix", pid, False))
        else:  # update
            pid = rng.choice(pages)
            offset = rng.randrange(PAGE_SIZE - 2)
            token = (token + 1) % 65536
            data = buf.session_fix(pid, sid)
            data[offset] = token >> 8
            data[offset + 1] = token & 0xFF
            expected[pid][offset] = token >> 8
            expected[pid][offset + 1] = token & 0xFF
            buf.session_unfix(pid, sid, dirty=True)
            log.append(("update", pid, offset, token))
        # The core latch guarantee, checked at every step: frames some
        # session holds fixed are never evicted out from under it.
        for pid in pinned_pages():
            assert buf.is_resident(pid), f"pinned page {pid} was evicted"

    # Disconnect every session, then flush: the final heap must equal
    # the shadow byte model exactly (no lost updates).
    for sid in range(SESSIONS):
        buf.release_session(sid)
    assert not buf.fixed_pages()
    buf.flush()
    # Counters first: the verification reads below go straight to the
    # disk and would otherwise charge the multi-session tally.
    multi_metrics = disk.metrics.snapshot()
    multi_image = {pid: disk.read_page(pid) for pid in pages}
    for pid in pages:
        assert multi_image[pid] == bytes(expected[pid]), f"page {pid} lost an update"

    # Shadow replay: same operations, plain single-session API, fresh
    # engine.  The ledger must have been pure bookkeeping.
    disk2, buf2, pages2 = build(fuzz_seed)
    assert pages2 == pages
    disk2.metrics.reset()
    for entry in log:
        if entry[0] == "fix":
            buf2.fix(entry[1])
        elif entry[0] == "unfix":
            buf2.unfix(entry[1], dirty=entry[2])
        else:
            _, pid, offset, tok = entry
            data = buf2.fix(pid)
            data[offset] = tok >> 8
            data[offset + 1] = tok & 0xFF
            buf2.unfix(pid, dirty=True)
    # The multi-session run released leftover pins without unfix log
    # entries; mirror that by dropping whatever is still fixed.
    for pid in list(buf2.fixed_pages()):
        frame = buf2._frames[pid]
        frame.fix_count = 0
    buf2.flush()
    assert disk2.metrics.snapshot() == multi_metrics
    for pid in pages:
        assert disk2.read_page(pid) == multi_image[pid], f"page {pid} shadow mismatch"


def test_interleaving_is_deterministic_per_seed(fuzz_seed):
    """The fuzzer itself must be reproducible: same seed, same final
    state — otherwise a failing seed could not be replayed."""

    def final_state(run):
        rng = random.Random(fuzz_seed)
        disk, buf, pages = build(fuzz_seed)
        buf.enable_latching()
        for step in range(120):
            sid = rng.randrange(SESSIONS)
            pid = pages[rng.randrange(len(pages))]
            data = buf.session_fix(pid, sid)
            if rng.random() < 0.5:
                data[step % PAGE_SIZE] = (sid * 37 + step) % 256
                buf.session_unfix(pid, sid, dirty=True)
            else:
                buf.session_unfix(pid, sid)
        buf.flush()
        return [disk.read_page(pid) for pid in pages], disk.metrics.snapshot()

    assert final_state(0) == final_state(1)
