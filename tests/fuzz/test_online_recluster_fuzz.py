"""Online-move fuzzer: bounded page moves interleaved with live traffic.

Two layers, both seeded and deterministic (see ``conftest.py``):

* **Heap level** — a seeded interleaving of reads, updates and
  :meth:`HeapFile.move_records` batches against a shadow byte model.
  After every move the forwarding map is folded into the shadow's rid
  table, and every access goes through the folded rids — so a stale
  forward, a lost record or a corrupted byte surfaces immediately, and
  the final physical contents must equal the shadow exactly.

* **Model level** — the same drifted trace replays once with a live
  :class:`OnlineRecluster` controller and once without; the *logical*
  database (every object under every read path) must come out
  identical, because online reclustering moves bytes and never data.
  Replaying the online run twice must also reproduce every counter —
  the determinism the serving CI gate assumes.
"""

from __future__ import annotations

import random

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.generator import generate_stations
from repro.benchmark.workload import (
    WorkloadExecutor,
    WorkloadSpec,
    compile_trace,
)
from repro.clustering.online import OnlineRecluster
from repro.storage import StorageEngine
from tests.conftest import build_loaded_model

#: Heap-level knobs: enough records to span many pages, a buffer small
#: enough to force eviction during moves, short records so pages hold
#: several each.
N_RECORDS = 80
STEPS = 250
BUFFER_PAGES = 8


def _record_bytes(rng: random.Random, token: int) -> bytes:
    return token.to_bytes(4, "little") + bytes(
        rng.randrange(256) for _ in range(rng.randint(8, 120))
    )


def test_heap_moves_against_shadow_model(fuzz_seed):
    rng = random.Random(fuzz_seed)
    engine = StorageEngine(buffer_pages=BUFFER_PAGES)
    heap = engine.new_heap("movefuzz")

    shadow = {}  # logical id -> bytes the heap must return
    rids = {}  # logical id -> current rid (folded through forwarding)
    token = 0
    for logical in range(N_RECORDS):
        shadow[logical] = _record_bytes(rng, token)
        rids[logical] = heap.insert(shadow[logical])
        token += 1

    for _ in range(STEPS):
        op = rng.choice(("read", "read", "update", "move"))
        if op == "read":
            logical = rng.randrange(N_RECORDS)
            assert heap.read(rids[logical]) == shadow[logical]
        elif op == "update":
            logical = rng.randrange(N_RECORDS)
            # Same length: in-place update never relocates the record.
            blob = shadow[logical]
            replacement = token.to_bytes(4, "little") + bytes(
                rng.randrange(256) for _ in range(len(blob) - 4)
            )
            token += 1
            heap.update(rids[logical], replacement)
            shadow[logical] = replacement
        else:
            logicals = rng.sample(range(N_RECORDS), rng.randint(1, 12))
            batch = [rids[logical] for logical in logicals]
            forwarding = heap.move_records(batch, rng.randint(1, 4))
            # The budget may stop the batch early, but whatever moved
            # must resolve: fold the partial map and read through it.
            assert set(forwarding) <= set(batch)
            for logical in logicals:
                rids[logical] = forwarding.get(rids[logical], rids[logical])
                assert heap.read(rids[logical]) == shadow[logical]

    # No bytes lost, none invented: physical contents == shadow.
    assert heap.count_records() == N_RECORDS
    stored = sorted(bytes(record) for _, record in heap.scan())
    assert stored == sorted(shadow.values())
    for logical in range(N_RECORDS):
        assert heap.read(rids[logical]) == shadow[logical]
    engine.close()


#: Model-level knobs: a small extension under a drifting trace whose
#: phases force several move batches through every shared segment.
MODEL_CONFIG = BenchmarkConfig(n_objects=36, buffer_pages=64)
MODEL_NAMES = ("NSM+index", "DASDBS-NSM")


def _drift_trace(fuzz_seed):
    spec = WorkloadSpec(
        name="fuzz-drift",
        point_weight=0.5,
        navigate_weight=0.3,
        scan_weight=0.0,
        update_weight=0.2,
        n_ops=120,
        seed=fuzz_seed,
        drift=random.Random(fuzz_seed).choice(("step", "rotate", "expand")),
        drift_period=20,
        hot_fraction=0.2,
    )
    return compile_trace(spec, MODEL_CONFIG.n_objects)


def _run_online(model_name, stations, trace):
    model = build_loaded_model(model_name, stations, buffer_pages=MODEL_CONFIG.buffer_pages)
    online = OnlineRecluster(
        model, trigger_ops=15, max_moves_per_trigger=4, min_heat=1
    )
    result = WorkloadExecutor(model, trace, online=online).run()
    return model, online, result


def test_online_run_preserves_logical_contents(fuzz_seed):
    stations = generate_stations(MODEL_CONFIG.with_changes(seed=fuzz_seed % 97))
    trace = _drift_trace(fuzz_seed)
    for model_name in MODEL_NAMES:
        plain = build_loaded_model(
            model_name, stations, buffer_pages=MODEL_CONFIG.buffer_pages
        )
        WorkloadExecutor(plain, trace).run()
        moved, online, _ = _run_online(model_name, stations, trace)
        try:
            assert online.triggers > 0  # the fuzz must exercise moves
            refs = moved.all_refs()
            assert len(refs) == len(plain.all_refs())
            assert [moved.fetch_full(ref) for ref in refs] == [
                plain.fetch_full(ref) for ref in plain.all_refs()
            ]
            assert moved.scan_all() == plain.scan_all()
        finally:
            plain.engine.close()
            moved.engine.close()


def test_online_run_is_deterministic(fuzz_seed):
    stations = generate_stations(MODEL_CONFIG.with_changes(seed=fuzz_seed % 97))
    trace = _drift_trace(fuzz_seed)
    _, first_ctl, first = _run_online("NSM+index", stations, trace)
    _, second_ctl, second = _run_online("NSM+index", stations, trace)
    assert first.raw == second.raw
    assert first_ctl.summary() == second_ctl.summary()
