"""Serializer fuzz: plan-based NF² codec vs the naive reference oracle.

``tests/nf2/test_serializer_parity.py`` pins the two implementations on
moderate random schemas; this suite is the *adversarial* layer: deeper
nesting, attribute-less relation levels, multibyte strings that brush
against their fixed byte widths, extreme format paddings, and
corruption probes.  The reference implementation is the specification —
any byte of disagreement is a bug in the plan compiler.

Seeds are fixed and extendable via ``REPRO_FUZZ_SEEDS`` (see
``conftest``); a failing test id names the seed to reproduce with.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SerializationError
from repro.nf2.schema import (
    Attribute,
    AttributeType,
    RelationSchema,
    int_attr,
    link_attr,
    str_attr,
)
from repro.nf2.serializer import (
    DASDBS_FORMAT,
    NF2Serializer,
    ReferenceNF2Serializer,
    StorageFormat,
)
from repro.nf2.values import NestedTuple

#: Characters of 1-3 encoded UTF-8 bytes: the generator controls the
#: *byte* length of a string, which is what the fixed widths bound.
ALPHABET = "ab-XYZ09 _é¥λ€"


def _random_format(rng: random.Random) -> StorageFormat:
    return StorageFormat(
        tuple_header=rng.choice((8, 13, 20, 40)),
        attr_overhead=rng.choice((2, 3, 6)),
        subrel_overhead=rng.choice((4, 5, 12)),
    )


def _random_string(rng: random.Random, byte_budget: int) -> str:
    """A string whose UTF-8 encoding fits ``byte_budget`` bytes.

    Often lands *exactly* on the budget — the boundary the fixed-width
    padding must survive.
    """
    target = byte_budget if rng.random() < 0.3 else rng.randint(0, byte_budget)
    out = []
    used = 0
    while used < target:
        char = rng.choice(ALPHABET)
        width = len(char.encode("utf-8"))
        if used + width > target:
            break
        out.append(char)
        used += width
    return "".join(out)


def _random_schema(rng: random.Random, depth: int, name: str) -> RelationSchema:
    attributes: list[Attribute] = []
    for index in range(rng.randint(0, 5)):
        kind = rng.choice(("int", "str", "link"))
        attr_name = f"{name}_a{index}"
        if kind == "int":
            attributes.append(int_attr(attr_name))
        elif kind == "link":
            attributes.append(link_attr(attr_name))
        else:
            attributes.append(str_attr(attr_name, size=rng.choice((1, 3, 5, 20, 100))))
    subrelations = []
    if depth > 1:
        for index in range(rng.randint(0, 3)):
            subrelations.append(_random_schema(rng, depth - 1, f"{name}_s{index}"))
    if not attributes and not subrelations:
        # A relation needs *something*; flip a coin between the two
        # degenerate shapes (atoms only / subrelations only).
        if depth > 1 and rng.random() < 0.5:
            subrelations.append(_random_schema(rng, depth - 1, f"{name}_only"))
        else:
            attributes.append(int_attr(f"{name}_pad"))
    return RelationSchema(
        name=name, attributes=tuple(attributes), subrelations=tuple(subrelations)
    )


def _random_tuple(rng: random.Random, schema: RelationSchema, fanout: int) -> NestedTuple:
    atoms = {}
    for attr in schema.attributes:
        if attr.type in (AttributeType.INT, AttributeType.LINK):
            atoms[attr.name] = rng.choice(
                (0, -1, 1, -(2**31), 2**31 - 1, rng.randint(-(2**31), 2**31 - 1))
            )
        else:
            atoms[attr.name] = _random_string(rng, attr.size)
    subs = {
        sub.name: [
            _random_tuple(rng, sub, fanout) for _ in range(rng.randint(0, fanout))
        ]
        for sub in schema.subrelations
    }
    return NestedTuple(schema, atoms, subs)


def test_deep_schema_round_trip_parity(fuzz_seed):
    """Depth-4 random schemas: byte parity + exact size accounting."""
    rng = random.Random(fuzz_seed)
    for case in range(8):
        fmt = _random_format(rng)
        fast = NF2Serializer(fmt)
        reference = ReferenceNF2Serializer(fmt)
        schema = _random_schema(rng, depth=rng.randint(1, 4), name=f"D{case}")
        value = _random_tuple(rng, schema, fanout=3)

        blob = fast.encode_nested(value)
        assert blob == reference.encode_nested(value)
        assert len(blob) == fmt.nested_size(value)
        assert fast.decode_nested(schema, blob) == value
        assert reference.decode_nested(schema, blob) == value

        flat = fast.encode_flat(value)
        assert flat == reference.encode_flat(value)
        assert fast.decode_flat(schema, flat) == reference.decode_flat(schema, flat)
        for attr in schema.attributes:
            assert fast.decode_atom(schema, flat, attr.name) == reference.decode_atom(
                schema, flat, attr.name
            )


def test_boundary_strings_survive_padding(fuzz_seed):
    """Strings at exactly their byte width round-trip unharmed."""
    rng = random.Random(fuzz_seed * 31 + 7)
    schema = RelationSchema.flat(
        "Tight", str_attr("s1", size=1), str_attr("s3", size=3), str_attr("s9", size=9)
    )
    fast = NF2Serializer()
    reference = ReferenceNF2Serializer()
    for _ in range(50):
        value = NestedTuple(
            schema,
            {
                "s1": _random_string(rng, 1),
                "s3": _random_string(rng, 3),
                "s9": _random_string(rng, 9),
            },
        )
        blob = fast.encode_flat(value)
        assert blob == reference.encode_flat(value)
        assert fast.decode_flat(schema, blob) == value


def test_subtuple_lists_parity(fuzz_seed):
    rng = random.Random(fuzz_seed ^ 0xBEEF)
    for case in range(6):
        fmt = _random_format(rng)
        fast = NF2Serializer(fmt)
        reference = ReferenceNF2Serializer(fmt)
        schema = _random_schema(rng, depth=rng.randint(1, 3), name=f"L{case}")
        children = [
            _random_tuple(rng, schema, fanout=2) for _ in range(rng.randint(0, 6))
        ]
        blob = fast.encode_subtuple_list(schema, children)
        assert blob == reference.encode_subtuple_list(schema, children)
        assert (
            fast.decode_subtuple_list(schema, blob)
            == reference.decode_subtuple_list(schema, blob)
            == children
        )


def test_truncated_blobs_raise_not_misdecode(fuzz_seed):
    """Both codecs reject truncations identically: an error, never junk.

    (Truncating inside the fixed-width atom area can still yield a
    structurally valid prefix for the reference decoder, so only cuts
    into the length-prefixed header are probed.)
    """
    rng = random.Random(fuzz_seed + 5)
    fast = NF2Serializer()
    reference = ReferenceNF2Serializer()
    schema = _random_schema(rng, depth=2, name="T")
    value = _random_tuple(rng, schema, fanout=2)
    blob = fast.encode_nested(value)
    for cut in (0, 1, min(3, len(blob) - 1)):
        truncated = blob[:cut]
        with pytest.raises(SerializationError):
            fast.decode_nested(schema, truncated)
        with pytest.raises(SerializationError):
            reference.decode_nested(schema, truncated)


def test_default_format_matches_calibrated_constants():
    """The fuzz formats vary the knobs; the default must stay pinned to
    the paper calibration the golden metrics depend on."""
    assert DASDBS_FORMAT.tuple_header == NF2Serializer().format.tuple_header
    assert ReferenceNF2Serializer().format == DASDBS_FORMAT
