"""Crashmonkey-lite: enumerate every crash point, recover, check invariants.

For each seed and each storage model the harness builds a small
extension over a :class:`~repro.fault.backend.FaultyBackend`, runs the
workload once *armed* to learn how many backend operations it issues,
then replays it once per crash point ``k``: a fresh build crashes at
backend operation ``k`` (:class:`~repro.errors.SimulatedCrash`, with the
in-flight write applying only a seeded page-granular prefix), recovers
via ``StorageEngine.recover()`` + ``model.apply_recovery(report)``, and
asserts the recovery invariants:

* **recluster / move** are all-or-nothing: after recovery every object's
  root content equals the pre-workload baseline, via references remapped
  by the recovery report;
* **update** is per-statement atomic: each flushed update is durable,
  the in-flight one reads as either the old or the new value, never a
  mix, and untouched objects are bit-identical.

Every enumeration is exhaustive (every single crash point of every
model), so one passing seed already exceeds the coverage bar of the
whole harness; the multi-seed parametrisation varies the reorganisation
order, the move/update targets and the torn-prefix RNG.
"""

from __future__ import annotations

import random
from functools import lru_cache

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.generator import generate_stations
from repro.errors import SimulatedCrash
from repro.fault.backend import FaultyBackend
from repro.fault.plan import FaultPlan
from repro.models.registry import MODEL_CLASSES, create_model
from repro.storage import StorageEngine
from repro.storage.backends import MemoryBackend

#: Small but structurally complete extension: long objects, shared
#: pages, every record type present.
CFG = BenchmarkConfig(n_objects=36, buffer_pages=64)

MODELS = tuple(MODEL_CLASSES)

#: The acceptance floor: each workload test must enumerate at least this
#: many crash points across the model grid (the suite as a whole covers
#: several times more).
MIN_POINTS_PER_SEED = 200


@lru_cache(maxsize=1)
def _stations():
    return tuple(generate_stations(CFG))


def _build(name, seed, crash_at=None):
    """A freshly loaded model over a fault-wrapped memory backend."""
    plan = FaultPlan(seed=seed, crash_at=crash_at)
    backend = FaultyBackend(MemoryBackend(CFG.page_size), plan)
    engine = StorageEngine(
        page_size=CFG.page_size,
        buffer_pages=CFG.buffer_pages,
        backend=backend,
    )
    engine.enable_journaling()
    engine.enable_checksums()
    model = create_model(name, engine)
    model.load(_stations())
    return model, engine, plan


def _count_ops(name, seed, workload):
    """Backend operations one armed run of ``workload`` issues."""
    model, engine, plan = _build(name, seed)
    plan.arm()
    workload(model, engine)
    plan.disarm()
    return plan.ops_seen


def _crash_points(name, seed, workload, check):
    """Enumerate every crash point of ``workload``; returns the count.

    ``check(model, engine, crashed)`` asserts the invariants; ``crashed``
    says whether this run actually hit its crash point (the workload may
    finish first when the op count shrinks with the crash prefix — then
    the run must simply equal a fault-free one).
    """
    n_ops = _count_ops(name, seed, workload)
    for crash_at in range(n_ops):
        model, engine, plan = _build(name, seed, crash_at=crash_at)
        plan.arm()
        crashed = False
        try:
            workload(model, engine)
            plan.disarm()
        except SimulatedCrash:
            crashed = True
            report = engine.recover()
            model.apply_recovery(report)
        check(model, engine, crashed)
    return n_ops


def _baseline(model):
    """Root content of every object, keyed by reference."""
    return {ref: model.fetch_roots([ref])[0] for ref in model.all_refs()}


# -- all-or-nothing reorganisation ----------------------------------------


def test_recluster_crash_consistency(fuzz_seed):
    """Crash anywhere inside recluster(); recovery restores every root."""
    total = 0
    for name in MODELS:
        rng = random.Random(fuzz_seed * 7919 + 1)
        order = list(range(CFG.n_objects))
        rng.shuffle(order)
        reference_model, _, _ = _build(name, fuzz_seed)
        expect = _baseline(reference_model)

        def workload(model, engine):
            model.recluster(order)

        def check(model, engine, crashed):
            got = _baseline(model)
            assert got == expect, (name, fuzz_seed)

        total += _crash_points(name, fuzz_seed, workload, check)
    assert total >= MIN_POINTS_PER_SEED


def test_move_objects_crash_consistency(fuzz_seed):
    """Crash anywhere inside move_objects(); recovery restores every root."""
    rng = random.Random(fuzz_seed * 7919 + 2)
    oids = rng.sample(range(CFG.n_objects), 8)
    for name in MODELS:
        reference_model, _, _ = _build(name, fuzz_seed)
        expect = _baseline(reference_model)

        def workload(model, engine):
            model.move_objects(oids, max_pages=4)

        def check(model, engine, crashed):
            got = _baseline(model)
            assert got == expect, (name, fuzz_seed)

        # Plain NSM moves nothing (no address tables) — zero crash
        # points is the correct enumeration there, not a gap.
        _crash_points(name, fuzz_seed, workload, check)


# -- per-statement atomic updates -----------------------------------------


def test_update_crash_atomicity(fuzz_seed):
    """Crash anywhere inside an update+flush sequence.

    After recovery every root is readable and each updated attribute
    holds either its original or its fully-updated value — a crash never
    surfaces a torn mixture, and objects outside the update set are
    untouched.
    """
    rng = random.Random(fuzz_seed * 7919 + 3)
    target_oids = rng.sample(range(CFG.n_objects), 6)
    for name in MODELS:
        reference_model, _, _ = _build(name, fuzz_seed)
        expect = _baseline(reference_model)
        refs = {oid: reference_model.ref_of(oid) for oid in target_oids}

        def workload(model, engine):
            for i, oid in enumerate(target_oids):
                model.update_roots([model.ref_of(oid)], {"Name": f"crash-{i}"})
                engine.flush()

        def check(model, engine, crashed):
            got = _baseline(model)
            for ref, baseline_root in expect.items():
                root = got[ref]
                oid = next(
                    (o for o, r in refs.items() if r == ref), None
                )
                if oid is None:
                    assert root == baseline_root, (name, fuzz_seed, ref)
                    continue
                i = target_oids.index(oid)
                allowed = {baseline_root["Name"], f"crash-{i}"}
                assert root["Name"] in allowed, (name, fuzz_seed, ref)
                rest = {k: v for k, v in root.items() if k != "Name"}
                baseline_rest = {
                    k: v for k, v in baseline_root.items() if k != "Name"
                }
                assert rest == baseline_rest, (name, fuzz_seed, ref)
            if not crashed:
                # A run that never reached its crash point must equal a
                # fault-free one: every update fully applied.
                for i, oid in enumerate(target_oids):
                    assert got[refs[oid]]["Name"] == f"crash-{i}"

        _crash_points(name, fuzz_seed, workload, check)
