"""Smoke and structure tests for the experiment harness (small scale)."""

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.experiments import (
    ablations,
    figure5,
    figure6,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from repro.experiments.cli import EXPERIMENTS, main
from repro.experiments.report import fmt_value, render_series, render_table

#: Tiny but complete configuration for harness tests.
CFG = BenchmarkConfig(
    n_objects=50,
    buffer_pages=60,
    loops=10,
    q1a_sample=6,
    q1b_sample=1,
    q2a_sample=3,
    seed=3,
)

#: Larger configuration for the scale-dependent ranking checks.
RANKING_CFG = BenchmarkConfig(
    n_objects=200,
    buffer_pages=160,
    q1a_sample=10,
    q1b_sample=1,
    q2a_sample=4,
    seed=3,
)


class TestReportHelpers:
    def test_fmt_none(self):
        assert fmt_value(None) == "-"

    def test_fmt_int(self):
        assert fmt_value(1200) == "1200"

    def test_fmt_float_magnitudes(self):
        assert fmt_value(3.14159) == "3.14"
        assert fmt_value(123.456) == "123.5"
        assert fmt_value(6078.0) == "6078"
        assert fmt_value(0.0) == "0"

    def test_fmt_bool(self):
        assert fmt_value(True) == "yes"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], [None, "x"]], note="n")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert text.endswith("n\n")

    def test_render_series(self):
        text = render_series("S", "x", [1, 2], {"m": [10, 20]})
        assert "m" in text and "20" in text


class TestTableBuilders:
    def test_table2_rows_cover_models(self):
        rows = table2.build_rows(CFG, with_measurements=True)
        models = {row.model for row in rows}
        assert models == {"DSM", "DASDBS-DSM", "NSM", "DASDBS-NSM"}
        for row in rows:
            assert row.m > 0

    def test_table2_paper_rows(self):
        rows = table2.paper_rows()
        dsm = next(r for r in rows if r.relation == "DSM_Station")
        assert dsm.s_tuple == 6078.0

    def test_table3_rows_have_primed_variants(self):
        rows = table3.build_rows(CFG, "derived")
        labels = [row[0] for row in rows]
        assert "DSM" in labels and "DSM'" in labels
        assert len(rows) == 10  # 5 models × (plain + primed)

    def test_table4_rows(self):
        rows = table4.build_rows(CFG)
        assert len(rows) == 4
        dsm_row = next(r for r in rows if r[0] == "DSM")
        assert all(v is not None and v > 0 for v in dsm_row[1:])

    def test_table5_pages_per_write_call(self):
        batch = table5.pages_per_write_call(CFG)
        assert batch["DASDBS-DSM"] == pytest.approx(1.0)  # pool writes
        assert batch["DSM"] >= 1.0

    def test_table6_totals(self):
        """NSM dominates fixes once relations span enough pages; at the
        paper's scale the factor is ~15x (370,000 fixes).  Scale-dependent,
        so this check runs on the larger ranking configuration."""
        fixes = table6.total_fixes_2b(RANKING_CFG)
        assert max(fixes, key=fixes.get) == "NSM"

    def test_table7_skew_rows(self):
        rows = table7.build_rows(CFG)
        for row in rows:
            assert row[1] is not None and row[2] is not None

    def test_table8_conclusion(self):
        """The Section 6 conclusion emerges at sufficient database scale
        (tiny extensions make NSM's scans artificially cheap)."""
        assert table8.conclusion_holds(RANKING_CFG)

    def test_figure5_series_shapes(self):
        series = figure5.build_series(CFG, levels=(0, 15), queries=("2b",))
        assert set(series["2b"]) == {"DSM", "DASDBS-DSM", "DASDBS-NSM"}
        assert all(len(v) == 2 for v in series["2b"].values())

    def test_figure6_series(self):
        series = figure6.build_series(CFG, sizes=(40, 80))
        assert len(series) == 3
        for s in series:
            assert len(s.measured) == 2
            assert all(w >= b for w, b in zip(s.worst_case, s.best_case))

    def test_ablation_formula_accuracy(self):
        rows = ablations.formula_accuracy_rows(cases=((10, 500, 50),), trials=100)
        case, cardenas, yao, simulated = rows[0]
        assert cardenas == pytest.approx(simulated, rel=0.1)
        assert yao == pytest.approx(simulated, rel=0.05)


class TestRenderedReports:
    @pytest.mark.parametrize("module", [table2, table3, table4, table7, table8])
    def test_render_produces_text(self, module):
        text = module.render(CFG)
        assert "Table" in text
        assert len(text.splitlines()) > 5


class TestCLI:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "figure5",
            "figure6",
            "ablations",
            "distribution",
            "clustering",
            "drift",
            "sweep",
            "sharding",
            "perf",
        }

    def test_cli_runs_selected_experiment(self, capsys):
        assert main(["table3", "--fast", "--objects", "50"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_cli_backend_flag(self, capsys, tmp_path):
        code = main(
            ["table3", "--fast", "--objects", "50", "--backend", "file",
             "--backend-path", str(tmp_path / "pages")]
        )
        assert code == 0
        assert "Table 3" in capsys.readouterr().out

    def test_cli_trace_requires_backend_path(self):
        with pytest.raises(SystemExit):
            main(["table3", "--fast", "--backend", "trace"])

    def test_cli_rejects_nonpositive_jobs(self):
        with pytest.raises(SystemExit):
            main(["table3", "--jobs", "0"])

    def test_cli_recluster_axis(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--fast", "--objects", "50", "--ops", "12",
             "--capacities", "24", "--policies", "lru",
             "--models", "DASDBS-NSM", "--workloads", "zipf(1.0)",
             "--recluster", "none", "affinity",
             "--sweep-json", str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recluster" in out
        payload = json_path.read_text()
        assert '"recluster": "affinity"' in payload
        assert '"workload_stats"' in payload

    def test_cli_rejects_unknown_recluster_policy(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--recluster", "dstc"])
