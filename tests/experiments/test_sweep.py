"""Sensitivity-sweep grid driver: coverage, determinism, CLI path."""

import json

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.workload import WorkloadSpec
from repro.errors import ModelError
from repro.experiments import sweep
from repro.experiments.cli import main
from repro.models.registry import resolve_models

#: Tiny grid that still crosses every axis.
CFG = BenchmarkConfig(
    n_objects=30,
    buffer_pages=32,
    loops=3,
    q1a_sample=3,
    q1b_sample=1,
    q2a_sample=2,
    seed=3,
)
WORKLOADS = (
    WorkloadSpec(name="u", n_ops=10, seed=5),
    WorkloadSpec(name="z", n_ops=10, seed=5, skew="zipf", zipf_theta=1.0),
)
CAPACITIES = (8, 24)
POLICIES = ("lru", "lru-k", "2q")
MODELS = ("DASDBS-DSM", "DASDBS-NSM")


@pytest.fixture(scope="module")
def result():
    return sweep.run_sweep(CFG, WORKLOADS, CAPACITIES, POLICIES, MODELS)


class TestGrid:
    def test_cell_count_is_the_cross_product(self, result):
        assert len(result.cells) == 2 * 2 * 3 * 2

    def test_cells_cover_every_axis_value(self, result):
        assert {c.workload for c in result.cells} == {"u", "z"}
        assert {c.capacity for c in result.cells} == set(CAPACITIES)
        assert {c.policy for c in result.cells} == set(POLICIES)
        assert {c.model for c in result.cells} == set(MODELS)

    def test_every_cell_ran_the_full_trace(self, result):
        for cell in result.cells:
            assert cell.result.n_ops == 10
            raw = cell.result.raw
            assert raw.page_fixes == raw.buffer_hits + raw.buffer_misses

    def test_larger_buffer_never_hits_less(self, result):
        """Within one workload × policy × model, growing the buffer
        cannot lower the LRU hit rate (stack property holds for this
        monotone trace)."""
        for cell in result.cells:
            if cell.capacity != 8 or cell.policy != "lru":
                continue
            bigger = next(
                c
                for c in result.cells
                if c.capacity == 24
                and c.policy == "lru"
                and c.workload == cell.workload
                and c.model == cell.model
            )
            assert bigger.result.hit_rate >= cell.result.hit_rate


class TestDeterminism:
    def test_json_byte_identical_across_runs(self, result):
        again = sweep.run_sweep(CFG, WORKLOADS, CAPACITIES, POLICIES, MODELS)
        assert again.to_json() == result.to_json()

    def test_parallel_equals_sequential(self, result):
        parallel = sweep.run_sweep(
            CFG, WORKLOADS, CAPACITIES, POLICIES, MODELS, jobs=4
        )
        assert parallel.to_json() == result.to_json()

    def test_processes_equal_sequential(self, result):
        """Worker processes regenerate the deterministic extension, so
        the grid is byte-identical to the in-process run."""
        multiproc = sweep.run_sweep(
            CFG, WORKLOADS, CAPACITIES, POLICIES, MODELS, processes=2
        )
        assert multiproc.to_json() == result.to_json()

    def test_snapshot_clones_change_no_byte(self, result):
        """ISSUE 4 acceptance: the module fixture runs with the snapshot
        store on (the default); rebuilding every cell from scratch must
        produce the identical JSON."""
        rebuilt = sweep.run_sweep(
            CFG.with_changes(snapshots=False), WORKLOADS, CAPACITIES, POLICIES, MODELS
        )
        assert rebuilt.to_json() == result.to_json()

    def test_process_path_spilled_snapshots_change_no_byte(self, result):
        """Workers cloning from spilled snapshot artifacts produce the
        same bytes as workers rebuilding from scratch."""
        spilled = sweep.run_sweep(
            CFG, WORKLOADS, CAPACITIES, POLICIES, MODELS, processes=2
        )
        rebuilt = sweep.run_sweep(
            CFG.with_changes(snapshots=False),
            WORKLOADS,
            CAPACITIES,
            POLICIES,
            MODELS,
            processes=2,
        )
        assert spilled.to_json() == rebuilt.to_json() == result.to_json()

    def test_json_is_valid_and_raw_integer(self, result):
        payload = json.loads(result.to_json())
        assert len(payload["cells"]) == len(result.cells)
        for cell in payload["cells"]:
            for counter in ("read_calls", "pages_read", "page_fixes", "evictions"):
                assert isinstance(cell[counter], int)
        assert payload["grid"]["capacities"] == list(CAPACITIES)

    def test_json_carries_service_time_estimates(self, result):
        """Every cell reports the Equation-1 service-time estimate, an
        exact function of its integer counters under the advertised
        geometry."""
        payload = json.loads(result.to_json())
        model = payload["grid"]["service_time_model"]
        for cell in payload["cells"]:
            calls = cell["read_calls"] + cell["write_calls"]
            pages = cell["pages_read"] + cell["pages_written"]
            expected = (
                model["positioning_ms"] * calls
                + model["transfer_ms_per_page"] * pages
            )
            assert cell["service_time_ms"] == expected


class TestRendering:
    def test_render_result_one_table_per_workload(self, result):
        text = sweep.render_result(result)
        assert text.count("Sweep —") == 2
        assert "calls/op" in text and "hit rate" in text

    def test_render_writes_json(self, tmp_path):
        path = tmp_path / "grid.json"
        text = sweep.render(
            CFG,
            workloads=WORKLOADS[:1],
            capacities=(8,),
            policies=("lru",),
            models=("DASDBS-NSM",),
            json_path=str(path),
        )
        assert "Sweep —" in text
        assert json.loads(path.read_text())["cells"]

    def test_string_workloads_are_parsed(self):
        result = sweep.run_sweep(
            CFG, ("uniform",), (8,), ("lru",), ("DASDBS-NSM",)
        )
        assert result.workloads[0].name == "uniform"

    def test_unknown_model_rejected(self):
        with pytest.raises(ModelError):
            sweep.run_sweep(CFG, WORKLOADS, (8,), ("lru",), ("NOPE",))

    def test_duplicate_workload_names_rejected(self):
        """Cells are keyed by workload name; duplicates would conflate
        two specs' cells indistinguishably."""
        from repro.errors import BenchmarkError

        twins = (WorkloadSpec(name="u", n_ops=5), WorkloadSpec(name="u", n_ops=9))
        with pytest.raises(BenchmarkError):
            sweep.run_sweep(CFG, twins, (8,), ("lru",), ("DASDBS-NSM",))

    def test_precompiled_trace_matches_run_workload(self):
        """run_trace (the sweep's path) and run_workload agree."""
        from repro.benchmark.runner import BenchmarkRunner
        from repro.benchmark.workload import compile_trace

        spec = WORKLOADS[0]
        runner = BenchmarkRunner(CFG)
        via_spec = runner.run_workload("DASDBS-NSM", spec)
        via_trace = runner.run_trace(
            "DASDBS-NSM", compile_trace(spec, CFG.n_objects)
        )
        assert via_spec.raw == via_trace.raw

    def test_model_aliases_resolve(self):
        assert resolve_models(["focus"]) == ("DSM", "DASDBS-DSM", "DASDBS-NSM")
        assert resolve_models(["measured", "DSM"]) == (
            "DSM",
            "DASDBS-DSM",
            "NSM",
            "DASDBS-NSM",
        )


class TestCLI:
    def test_sweep_subcommand(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--fast",
                "--objects",
                "30",
                "--ops",
                "8",
                "--capacities",
                "8",
                "16",
                "--policies",
                "lru",
                "2q",
                "--workloads",
                "uniform",
                "zipf(1.0)",
                "--models",
                "DASDBS-NSM",
                "--sweep-json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep —" in out
        payload = json.loads(json_path.read_text())
        assert len(payload["cells"]) == 2 * 2 * 2 * 1

    def test_no_snapshots_flag_changes_no_byte(self, tmp_path):
        args = [
            "sweep",
            "--fast",
            "--objects",
            "30",
            "--ops",
            "8",
            "--capacities",
            "16",
            "--policies",
            "lru",
            "--workloads",
            "uniform",
            "--models",
            "DASDBS-NSM",
        ]
        on_path, off_path = tmp_path / "on.json", tmp_path / "off.json"
        assert main(args + ["--snapshots", "--sweep-json", str(on_path)]) == 0
        assert main(args + ["--no-snapshots", "--sweep-json", str(off_path)]) == 0
        assert on_path.read_bytes() == off_path.read_bytes()

    def test_cli_rejects_bad_capacity(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--capacities", "0"])

    def test_cli_rejects_bad_workload(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--workloads", "nonsense"])

    def test_cli_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--policies", "mru"])

    def test_cli_rejects_bad_ops(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--ops", "0"])
