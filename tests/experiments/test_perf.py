"""The hot-path perf harness: checksums, check mode, CLI plumbing."""

from __future__ import annotations

import json

import pytest

from repro.errors import BenchmarkError
from repro.experiments import perf
from repro.experiments.cli import main

BENCH_NAMES = {
    "serializer_encode",
    "serializer_decode",
    "page_fill",
    "page_scan",
    "buffer_churn",
    "read_many_zero_copy",
    "sweep_cell",
    "sharded_sweep",
    "sweep_cell_snapshot",
    "backend_io_wallclock",
    "serving_closed_loop",
    "drift_online_replay",
    "crash_recovery_replay",
}


@pytest.fixture(scope="module")
def report():
    return perf.run_perf(repeats=1)


class TestReport:
    def test_every_hot_path_is_benchmarked(self, report):
        assert {res.name for res in report.results} == BENCH_NAMES

    def test_checksums_are_deterministic(self, report):
        again = perf.run_perf(repeats=1)
        for res, res2 in zip(report.results, again.results):
            assert res.name == res2.name
            assert res.checksum == res2.checksum
            assert res.n_ops == res2.n_ops

    def test_reference_paths_are_timed(self, report):
        """The retained naive implementations are measured, so the
        speedup claim stays a live number (its value is machine-
        dependent and deliberately not asserted here)."""
        for name in (
            "serializer_encode",
            "serializer_decode",
            "page_scan",
            "read_many_zero_copy",
            "sweep_cell_snapshot",
            "backend_io_wallclock",
        ):
            assert report.result(name).reference_ms is not None
            assert report.result(name).speedup is not None

    def test_encode_and_decode_agree_on_bytes(self, report):
        """The decode checksum hashes re-encoded decodes: matching the
        encode checksum proves round-trip fidelity."""
        assert (
            report.result("serializer_encode").checksum
            == report.result("serializer_decode").checksum
        )

    def test_json_payload_shape(self, report):
        payload = json.loads(report.to_json())
        assert payload["schema"] == 1
        assert len(payload["benchmarks"]) == len(BENCH_NAMES)
        for bench in payload["benchmarks"]:
            assert set(bench) == {
                "name",
                "n_ops",
                "best_ms",
                "per_op_us",
                "reference_ms",
                "speedup_vs_reference",
                "checksum",
            }


class TestCheckMode:
    def test_self_check_passes(self, report):
        assert report.check_against(json.loads(report.to_json())) == []

    def test_checksum_drift_is_reported(self, report):
        golden = json.loads(report.to_json())
        golden["benchmarks"][0]["checksum"] = "0" * 64
        problems = report.check_against(golden)
        assert len(problems) == 1
        assert "checksum" in problems[0]

    def test_missing_and_extra_benchmarks_are_reported(self, report):
        golden = json.loads(report.to_json())
        removed = golden["benchmarks"].pop()
        golden["benchmarks"].append(dict(removed, name="phantom_bench"))
        problems = report.check_against(golden)
        assert any("phantom_bench" in p for p in problems)
        assert any(removed["name"] in p for p in problems)

    def test_render_report_raises_on_drift(self, report, tmp_path):
        golden = json.loads(report.to_json())
        golden["benchmarks"][0]["n_ops"] += 1
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(golden))
        with pytest.raises(BenchmarkError):
            perf.render_report(report, check_path=str(path))


class TestCLI:
    def test_perf_subcommand_writes_json(self, capsys, tmp_path):
        path = tmp_path / "bench.json"
        code = main(["perf", "--perf-repeats", "1", "--perf-json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Hot-path microbenchmarks" in out
        payload = json.loads(path.read_text())
        assert {b["name"] for b in payload["benchmarks"]} == BENCH_NAMES

    def test_perf_check_mode_roundtrip(self, capsys, tmp_path):
        path = tmp_path / "bench.json"
        assert main(["perf", "--perf-repeats", "1", "--perf-json", str(path)]) == 0
        capsys.readouterr()
        assert main(["perf", "--perf-repeats", "1", "--perf-check", str(path)]) == 0
        assert "all checksums match" in capsys.readouterr().out

    def test_perf_check_mode_fails_on_drift(self, capsys, tmp_path):
        path = tmp_path / "bench.json"
        assert main(["perf", "--perf-repeats", "1", "--perf-json", str(path)]) == 0
        payload = json.loads(path.read_text())
        payload["benchmarks"][0]["checksum"] = "f" * 64
        path.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["perf", "--perf-repeats", "1", "--perf-check", str(path)]) == 2
        assert "drifted" in capsys.readouterr().err

    def test_cli_rejects_bad_repeats(self):
        with pytest.raises(SystemExit):
            main(["perf", "--perf-repeats", "0"])


def test_committed_golden_matches_current_code(report):
    """The committed BENCH_hotpaths.json is the CI golden: its
    checksums must match what the code produces right now."""
    from pathlib import Path

    golden_path = Path(__file__).resolve().parents[2] / "BENCH_hotpaths.json"
    golden = json.loads(golden_path.read_text())
    assert report.check_against(golden) == []
