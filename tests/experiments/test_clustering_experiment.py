"""The clustering experiment: reductions, invariances, determinism."""

from __future__ import annotations

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.experiments import clustering

#: Small enough for CI, big enough that the pressured buffer (24 pages
#: after ``experiment_config``) truly thrashes.
CFG = BenchmarkConfig(n_objects=120, buffer_pages=128, seed=7)

#: A minimal configuration for the cheap structural checks (plain NSM's
#: scan-per-access cost dominates wall clock at any real scale).
TINY = BenchmarkConfig(n_objects=60, buffer_pages=128, seed=7)

ZIPF_SKEWS = (("zipf(1.0)", 1.0), ("zipf(1.4)", 1.4))


@pytest.fixture(scope="module")
def comparison():
    """Access-path models only — the expensive, signal-bearing cells."""
    return clustering.run_comparison(
        CFG, models=("NSM+index", "DASDBS-NSM"), skews=ZIPF_SKEWS
    )


def test_experiment_config_pressures_the_buffer():
    assert clustering.experiment_config(CFG).buffer_pages == 24
    assert clustering.experiment_config(
        BenchmarkConfig(buffer_pages=1200)
    ).buffer_pages == 150


def test_affinity_reduces_reads_for_access_path_models(comparison):
    """The acceptance criterion, measured: on the Zipf-skewed
    navigation workloads, affinity reclustering reduces physical page
    reads vs insertion order for the NSM family's indexed variant and
    for DASDBS-NSM."""
    for skew in ("zipf(1.0)", "zipf(1.4)"):
        for model in ("NSM+index", "DASDBS-NSM"):
            per_policy = comparison[skew][model]
            assert per_policy["affinity"] < per_policy["none"], (skew, model)


def test_hotcold_also_helps_under_skew(comparison):
    for model in ("NSM+index", "DASDBS-NSM"):
        per_policy = comparison["zipf(1.4)"][model]
        assert per_policy["hotcold"] < per_policy["none"], model


def test_plain_nsm_is_placement_invariant():
    """Every plain-NSM access is a relation scan: reads may drift only
    by packing noise."""
    comparison = clustering.run_comparison(
        TINY, models=("NSM",), skews=(("zipf(1.0)", 1.0),)
    )
    per_policy = comparison["zipf(1.0)"]["NSM"]
    for policy in ("affinity", "hotcold"):
        drift = abs(per_policy[policy] - per_policy["none"])
        assert drift <= 0.02 * per_policy["none"], policy


def test_direct_models_move_little():
    """DSM / DASDBS-DSM keep large objects on private pages; only the
    small-object heap can move, so the change stays marginal."""
    comparison = clustering.run_comparison(
        TINY, models=("DSM", "DASDBS-DSM"), skews=(("zipf(1.0)", 1.0),)
    )
    for model in ("DSM", "DASDBS-DSM"):
        per_policy = comparison["zipf(1.0)"][model]
        for policy in ("affinity", "hotcold"):
            drift = abs(per_policy[policy] - per_policy["none"])
            assert drift <= 0.05 * per_policy["none"], (model, policy)


def test_run_comparison_is_deterministic():
    kwargs = dict(models=("DASDBS-NSM",), skews=(("zipf(1.0)", 1.0),))
    assert clustering.run_comparison(TINY, **kwargs) == clustering.run_comparison(
        TINY, **kwargs
    )


def test_render_is_complete():
    text = clustering.render(TINY)
    for model in clustering.CLUSTERED_MODELS:
        assert model in text
    for skew_name, _ in clustering.SKEW_LEVELS:
        assert f"nav-{skew_name}" in text
    assert "placement-" in text  # the physics note rides along
