"""Metric parity: the optimised hot paths change wall clock, nothing else.

``goldens/seed_metrics.json`` was captured from the **seed**
implementation (pre-optimisation: per-field ``struct`` serializer,
per-slot page reads, un-cached page headers, no buffer fast path) at a
small scale.  These tests re-run the same experiments through today's
optimised stack and require bit-identical results:

* the rendered text of Tables 3-8 (which embeds every normalised
  counter the paper reports),
* the raw integer counters (I/O calls, I/O pages, page fixes, buffer
  hits/misses) of every model x query cell of the measurement campaign,
* the sweep-grid JSON — byte-for-byte once the fields this PR *added*
  (``service_time_ms`` per cell, ``service_time_model`` in the grid)
  are stripped; the added fields themselves must be exact functions of
  the integer counters.

If any of these fail after touching :mod:`repro.nf2.serializer`,
:mod:`repro.storage.page` or :mod:`repro.storage.buffer`, the
optimisation changed physics, not just speed — fix the code, never the
golden.  (Refreshing the golden is legitimate only for experiments
whose *semantics* deliberately changed, recorded in CHANGES.md.)
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments import sweep, table3, table4, table5, table6, table7, table8
from repro.experiments.measure import FAST_CONFIG, measured_runs
from repro.models.registry import MEASURED_MODELS
from repro.benchmark.queries import QUERY_NAMES

GOLDEN_PATH = Path(__file__).parent / "goldens" / "seed_metrics.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: The scale the golden was captured at (CI-smoke scale).
CONFIG = FAST_CONFIG.with_changes(n_objects=GOLDEN["config"]["n_objects"])

TABLES = {
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
}


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@pytest.mark.parametrize("name", sorted(TABLES))
def test_table_render_matches_seed(name):
    """Tables 3-8 render byte-identically to the seed implementation.

    (The shared measurement campaign is cached by ``measured_runs``, so
    the six tables cost two campaigns, not six.)
    """
    assert _sha(TABLES[name].render(CONFIG)) == GOLDEN["table_sha256"][name], (
        f"{name} output drifted from the seed capture — an optimisation "
        f"moved a paper-visible metric"
    )


def test_raw_query_counters_match_seed():
    """Raw I/O calls / pages / fixes of every model x query are identical."""
    runs = measured_runs(CONFIG, MEASURED_MODELS, QUERY_NAMES)
    for model, per_query in GOLDEN["query_counters"].items():
        run = runs[model]
        for query, want in per_query.items():
            result = run.results.get(query)
            if want is None:
                assert result is None, f"{model}/{query}: unexpectedly supported"
                continue
            raw = result.raw
            got = [
                raw.io_calls,
                raw.io_pages,
                raw.page_fixes,
                raw.buffer_hits,
                raw.buffer_misses,
            ]
            assert got == want, f"{model}/{query}: counters {got} != seed {want}"


@pytest.fixture(scope="module")
def sweep_result():
    return sweep.run_sweep(
        CONFIG,
        workloads=("uniform", "zipf(1.0)"),
        capacities=(24, 48),
        policies=("lru", "lru-k", "2q"),
    )


def test_sweep_json_matches_seed_modulo_new_fields(sweep_result):
    """Stripping this PR's added fields reproduces the seed bytes."""
    payload = json.loads(sweep_result.to_json())
    payload["grid"].pop("service_time_model")
    for cell in payload["cells"]:
        cell.pop("service_time_ms")
    stripped = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    assert _sha(stripped) == GOLDEN["sweep_sha256"], (
        "sweep counters drifted from the seed capture"
    )


def test_sweep_service_time_is_a_function_of_the_counters(sweep_result):
    """The added field adds information, never new measurement noise."""
    geometry = sweep.SWEEP_GEOMETRY
    for cell in sweep_result.cells:
        raw = cell.result.raw
        assert cell.service_time_ms == geometry.service_time_ms(
            raw.io_calls, raw.io_pages
        )
        assert cell.to_dict()["service_time_ms"] == cell.service_time_ms


def test_recluster_none_is_byte_identical_to_the_seed_format(sweep_result):
    """ISSUE 5's golden gate: the ``--recluster none`` axis changes not
    one byte of the sweep output — the whole JSON (no field stripping),
    and therefore every paper-visible counter inside it, matches a sweep
    run before the axis existed, and stripping the PR-3 fields still
    reproduces the seed golden hash."""
    explicit_none = sweep.run_sweep(
        CONFIG,
        workloads=("uniform", "zipf(1.0)"),
        capacities=(24, 48),
        policies=("lru", "lru-k", "2q"),
        reclusters=("none",),
    )
    default_json = sweep_result.to_json()
    assert explicit_none.to_json() == default_json
    # The axis leaves no trace in the default encoding...
    assert '"recluster"' not in default_json
    assert '"workload_stats"' not in default_json
    # ...and the counters still hash to the seed golden (the PR-3
    # service-time fields stripped exactly as the seed comparison does).
    payload = json.loads(explicit_none.to_json())
    payload["grid"].pop("service_time_model")
    for cell in payload["cells"]:
        cell.pop("service_time_ms")
    stripped = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    assert _sha(stripped) == GOLDEN["sweep_sha256"]


def test_recluster_none_config_keeps_table_goldens():
    """An explicit ``recluster="none"`` config renders Tables 3-8 to the
    exact seed bytes (the fixed query suites never retrain)."""
    config = CONFIG.with_changes(recluster="none")
    for name, module in sorted(TABLES.items()):
        assert _sha(module.render(config)) == GOLDEN["table_sha256"][name], name
