#!/usr/bin/env python
"""Full storage-model comparison: the paper's study as a decision tool.

Runs all seven benchmark queries on the four storage models over the
same generated extension, prints the measured page I/Os, calls and
fixes side by side, and derives the Table 8 style ranking — the answer
to "which storage structure for complex objects is the most efficient
under which circumstances".

Run:  python examples/storage_model_comparison.py [n_objects]
"""

import sys

from repro import BenchmarkConfig, BenchmarkRunner, CostWeights
from repro.benchmark.queries import QUERY_NAMES
from repro.core.ranking import FACTORS, rank_models
from repro.experiments.report import render_table

n_objects = int(sys.argv[1]) if len(sys.argv) > 1 else 300
config = BenchmarkConfig(
    n_objects=n_objects,
    buffer_pages=max(24, (n_objects * 4) // 5),  # overflow regime, like the paper
    q1a_sample=40,
    q1b_sample=2,
    q2a_sample=10,
)

print(f"running all queries on a {n_objects}-object extension ...\n")
runner = BenchmarkRunner(config)
runs = runner.run_models()

for attribute, title in (
    ("io_pages", "physical page I/Os (Table 4)"),
    ("io_calls", "I/O calls (Table 5)"),
    ("page_fixes", "buffer fixes (Table 6)"),
):
    rows = [
        [name] + [run.metric(q, attribute) for q in QUERY_NAMES]
        for name, run in runs.items()
    ]
    print(render_table(f"Measured {title}", ["model"] + list(QUERY_NAMES), rows))

rows = []
weights = CostWeights()
for ranking in rank_models(runs, weights):
    rows.append(
        [ranking.model]
        + [ranking.grades[f] for f in FACTORS]
        + [ranking.scores["total"] / 1000.0]
    )
print(
    render_table(
        "Overall ranking (Table 8; ++ best, -- worst)",
        ["model", *FACTORS, "est. cost [s]"],
        rows,
        note=(
            "Paper conclusion: DASDBS-NSM best, NSM worst, DASDBS-DSM "
            "better than DSM."
        ),
    )
)
