#!/usr/bin/env python
"""Quickstart: store complex objects, count the disk I/Os.

Builds a small railway database, loads it into two storage models, runs
one retrieval and one navigation query on each, and compares the
measured page I/Os with the paper's analytical prediction.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalyticalEvaluator,
    BenchmarkConfig,
    BenchmarkRunner,
    WorkloadParameters,
    derive_parameters,
)

# A 300-object extension with a buffer that cannot hold the whole
# direct-model database — the regime the paper studies.
config = BenchmarkConfig(n_objects=300, buffer_pages=240, seed=1)
runner = BenchmarkRunner(config)

stats = runner.statistics()
print(
    f"Generated {stats.n_objects} Station objects: "
    f"{stats.avg_platforms:.2f} platforms, {stats.avg_connections:.2f} connections, "
    f"{stats.avg_sightseeings:.2f} sightseeings on average\n"
)

evaluator = AnalyticalEvaluator(
    derive_parameters(config), WorkloadParameters.from_config(config)
)

print(f"{'model':12s} {'query':>6s} {'measured pages':>15s} {'predicted':>10s}")
for model_name in ("DSM", "DASDBS-NSM"):
    run = runner.run_model(model_name, queries=("1a", "2b"))
    for query in ("1a", "2b"):
        measured = run.metric(query, "io_pages")
        predicted = evaluator.estimate(model_name, query)
        print(f"{model_name:12s} {query:>6s} {measured:>15.2f} {predicted:>10.2f}")

print(
    "\nQuery 1a retrieves whole objects by identifier; query 2b is the "
    "navigation loop\n(root -> children -> grand-children), normalised per loop."
)
print(
    "DSM ships every page of an object; DASDBS-NSM reads one small tuple "
    "per relation --\nthe paper's headline result, visible in the counts above."
)
