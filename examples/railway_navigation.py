#!/usr/bin/env python
"""Railway navigation: the paper's motivating workload, end to end.

A travel-planner asks: starting from a station, which stations are
reachable within two train changes, and what is there to see near the
destinations?  That is exactly benchmark query 2 (navigation) plus a
full-object fetch — this example runs it as an application would,
against the storage model of your choice, and shows what the choice
costs in physical I/O.

Run:  python examples/railway_navigation.py [DSM|DASDBS-DSM|NSM+index|DASDBS-NSM]
"""

import sys

from repro import BenchmarkConfig, StorageEngine, create_model, generate_stations
from repro.benchmark.schema import oid_of_key

MODEL = sys.argv[1] if len(sys.argv) > 1 else "DASDBS-NSM"

config = BenchmarkConfig(n_objects=200, buffer_pages=160, seed=8)
stations = generate_stations(config)

engine = StorageEngine(buffer_pages=config.buffer_pages)
model = create_model(MODEL, engine)
model.load(stations)
engine.reset_metrics()

start_oid = 17
start_ref = model.ref_of(start_oid)

# Hop 1: which stations does the start connect to?
direct = model._dedupe(model.fetch_refs([start_ref]))
# Hop 2: and where can we change trains to?
two_hops = model._dedupe(model.fetch_refs(direct)) if direct else []
# Read the destination descriptions (root records).
destinations = model.fetch_roots(two_hops) if two_hops else []

metrics = engine.metrics.snapshot()
start_name = stations[start_oid]["Name"]
print(f"storage model : {MODEL}")
print(f"start station : {start_name}")
print(f"direct trains : {len(direct)} stations")
print(f"two changes   : {len(two_hops)} stations")
for atoms in destinations[:5]:
    print(f"   -> {atoms['Name']} ({atoms['NoSeeing']} sights nearby)")
if len(destinations) > 5:
    print(f"   ... and {len(destinations) - 5} more")

print("\nphysical cost of the trip planning:")
print(f"   page reads : {metrics.pages_read}")
print(f"   I/O calls  : {metrics.io_calls}")
print(f"   buffer fixes: {metrics.page_fixes}")

# Finally inspect one destination in full (sightseeing details included).
if two_hops:
    engine.reset_metrics()
    ref = two_hops[0]
    oid = ref if model.supports_oid_access and MODEL != "NSM+index" else oid_of_key(ref)
    station = model.fetch_full_by_key(stations[oid]["Key"])
    full_cost = engine.metrics.snapshot()
    print(
        f"\nfetching {station['Name']} in full (value lookup, "
        f"{len(station.subtuples('Sightseeing'))} sights): "
        f"{full_cost.pages_read} page reads"
    )
