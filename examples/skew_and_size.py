#!/usr/bin/env python
"""Object size and data skew: Figures 5 and Table 7 as an application study.

Two questions a schema designer would ask of the paper:

1. My objects carry large rarely-used parts (here: Sightseeing).  How
   does each storage model cope as that payload grows?  (Figure 5)
2. My data is skewed — a few huge objects, many empty ones.  Does the
   choice still hold?  (Table 7, probability 0.2 / fanout 8)

Run:  python examples/skew_and_size.py
"""

from repro import BenchmarkConfig, BenchmarkRunner
from repro.benchmark.stats import DatabaseStatistics

MODELS = ("DSM", "DASDBS-DSM", "DASDBS-NSM")
BASE = BenchmarkConfig(n_objects=240, buffer_pages=200, seed=6, q2a_sample=5)

print("== Question 1: growing cold payload (max sightseeings 0 / 15 / 30) ==\n")
print(f"{'maxSight':>9s}" + "".join(f"{m:>13s}" for m in MODELS) + "   (query 2b pages/loop)")
for level in (0, 15, 30):
    config = BASE.with_changes(max_sightseeing=level)
    runner = BenchmarkRunner(config)
    row = [runner.run_model(m, queries=("2b",)).metric("2b", "io_pages") for m in MODELS]
    print(f"{level:>9d}" + "".join(f"{v:>13.2f}" for v in row))

print(
    "\nDASDBS-NSM is flat: its navigation never touches the Sightseeing\n"
    "relation.  DSM pays for every byte of every visited object."
)

print("\n== Question 2: data skew (probability 0.2, fanout 8) ==\n")
for label, config in (
    ("uniform", BASE),
    ("skewed ", BASE.with_changes(probability=0.2, fanout=8)),
):
    runner = BenchmarkRunner(config)
    stats = DatabaseStatistics.from_stations(runner.stations)
    row = [runner.run_model(m, queries=("2b",)).metric("2b", "io_pages") for m in MODELS]
    cells = "".join(f"{v:>13.2f}" for v in row)
    print(
        f"{label}: avg conns {stats.avg_connections:5.2f} "
        f"(max {stats.max_connections:3d}) |{cells}"
    )

print(
    "\nThe means are engineered to match ((fanout*p)^3 = 4.096 either way),\n"
    "so the per-loop averages barely move — the paper's Table 7 finding.\n"
    "The maxima explode, which matters for distribution, not for I/O counts."
)
