#!/usr/bin/env python
"""Disk backends: measure on a real file, record and replay a trace.

Runs the navigation query (2b) on DASDBS-NSM three times:

1. on the in-memory simulator (the paper's numbers),
2. on the file backend — the same I/O calls become real
   ``preadv``/``pwritev`` syscalls against a backing file,
3. on the trace backend — every backend call lands in a JSONL trace,
   from which Equation 1's X_calls / X_pages can be read directly and
   which replays to identical page contents on a fresh backend.

Run:  python examples/trace_replay.py
"""

import os
import tempfile

from repro import BenchmarkConfig, BenchmarkRunner
from repro.storage import MemoryBackend, load_trace, replay_trace

MODEL = "DASDBS-NSM"
base = BenchmarkConfig(n_objects=120, buffer_pages=120, loops=24, seed=5)

with tempfile.TemporaryDirectory(prefix="repro-backends-") as workdir:
    print(f"{'backend':8s} {'io_calls/loop':>14s} {'io_pages/loop':>14s}")
    for backend in ("memory", "file", "trace"):
        config = base.with_changes(
            backend=backend, backend_path=os.path.join(workdir, backend)
        )
        run = BenchmarkRunner(config).run_model(MODEL, queries=("2b",))
        print(
            f"{backend:8s} {run.metric('2b', 'io_calls'):>14.2f} "
            f"{run.metric('2b', 'io_pages'):>14.2f}"
        )

    print("\nSame counters on every backend — the accounting lives above the")
    print("backend, so the simulator's numbers carry over to real file I/O.\n")

    # The trace run above left a replayable JSONL file behind.
    trace_path = os.path.join(workdir, "trace", f"{MODEL}.jsonl")
    events = load_trace(trace_path)
    reads = [e for e in events if e.op == "read"]
    writes = [e for e in events if e.op == "write"]
    print(f"Trace: {len(events)} recorded calls in {trace_path}")
    print(
        f"  X_calls = {len(reads) + len(writes)} "
        f"({len(reads)} read + {len(writes)} write calls)"
    )
    print(
        f"  X_pages = {sum(len(e.pages) for e in reads + writes)} "
        "(summed pages of those calls)"
    )

    replayed = MemoryBackend(base.page_size)
    replay_trace(events, replayed)
    print(f"Replayed all {len(events)} calls onto a fresh MemoryBackend.")
