#!/usr/bin/env python
"""Cache sensitivity: reproduce the Figure 6 experiment interactively.

Sweeps the buffer size for a fixed database and plots (in ASCII) the
query-2b page I/Os per loop for the three focus models, bracketed by
the analytical best and worst cases.  The paper varies the database
against a fixed 1200-page buffer; varying the buffer against a fixed
database shows the same crossover from cached plateau to thrashing.

Run:  python examples/cache_sensitivity.py
"""

from repro import (
    AnalyticalEvaluator,
    BenchmarkConfig,
    BenchmarkRunner,
    WorkloadParameters,
    derive_parameters,
)

BUFFERS = (60, 120, 240, 480, 960)
MODELS = ("DSM", "DASDBS-DSM", "DASDBS-NSM")

base = BenchmarkConfig(n_objects=240, seed=4, q2a_sample=5)
evaluator = AnalyticalEvaluator(
    derive_parameters(base), WorkloadParameters.from_config(base)
)

results: dict[str, list[float]] = {m: [] for m in MODELS}
for buffer_pages in BUFFERS:
    config = base.with_changes(buffer_pages=buffer_pages)
    runner = BenchmarkRunner(config)
    for model in MODELS:
        run = runner.run_model(model, queries=("2b",))
        results[model].append(run.metric("2b", "io_pages"))

print(f"query 2b page I/Os per loop, {base.n_objects}-object database\n")
header = f"{'buffer':>8s}" + "".join(f"{m:>13s}" for m in MODELS)
print(header)
print("-" * len(header))
for i, buffer_pages in enumerate(BUFFERS):
    row = f"{buffer_pages:>8d}" + "".join(f"{results[m][i]:>13.2f}" for m in MODELS)
    print(row)

print("\nanalytical brackets (best case with large cache / worst case without):")
for model in MODELS:
    best = evaluator.estimate(model, "2b")
    worst = evaluator.estimate(model, "2b", worst=True)
    print(f"  {model:12s} best {best:7.2f}   worst {worst:7.2f}")

print("\nASCII view (each * = 2 pages/loop, B marks the best case):")
for model in MODELS:
    best = evaluator.estimate(model, "2b")
    print(f"\n  {model}")
    for buffer_pages, value in zip(BUFFERS, results[model]):
        bar = "*" * max(1, round(value / 2))
        marker = " " * max(0, round(best / 2) - 1) + "B"
        print(f"  {buffer_pages:>6d} |{bar}")
    print(f"         {marker} <- best case")
